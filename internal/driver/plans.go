package driver

import "miniamr/internal/membuf"

// Slabs is a set of pooled arena buffers with a common lifetime — the
// receive slabs of one communication epoch. The buffers are grabbed when
// the epoch's message plans are built and stay stable until the next
// rebuild, so per-stage hot paths reuse them without allocating.
type Slabs struct {
	arena *membuf.Arena
	bufs  [][]float64
}

// Init binds the slab set to an arena. The zero Slabs must be Init'ed
// before the first Grab.
func (s *Slabs) Init(a *membuf.Arena) { s.arena = a }

// Grab appends a pooled buffer of n float64s and returns it.
//
//amr:hot allocs=0
func (s *Slabs) Grab(n int) []float64 {
	b := s.arena.GetFloat64(n)
	s.bufs = append(s.bufs, b)
	return b
}

// Buf returns the i-th grabbed buffer.
func (s *Slabs) Buf(i int) []float64 { return s.bufs[i] }

// Len returns the number of live buffers.
func (s *Slabs) Len() int { return len(s.bufs) }

// ReleaseAll returns every buffer to the arena. Callers must have drained
// all in-flight receives first; plan rebuilds run only at quiesced points.
func (s *Slabs) ReleaseAll() {
	for _, b := range s.bufs {
		s.arena.PutFloat64(b)
	}
	s.bufs = s.bufs[:0]
}

// Plan is one precomputed message of a communication epoch: its peer,
// matching tag, payload length per variable, and the application's
// segment list describing how the payload packs and unpacks. Message
// length for a group of gv variables is Cells*gv (segment lengths are
// linear in the group width).
type Plan[S any] struct {
	Peer  int
	Tag   int
	Cells int
	Segs  []S
}

// Plans caches one direction's send and receive message plans together
// with the pooled receive slabs backing them, derived once per epoch:
// the per-stage hot paths walk the plans without re-planning or
// allocating. Send-side slabs are not retained — each outgoing message
// packs into a fresh arena lease whose ownership transfers to the MPI
// layer (the receiver returns it).
type Plans[S any] struct {
	SendPlans []Plan[S]
	RecvPlans []Plan[S]

	recvBufs Slabs
}

// Init binds the receive slabs to an arena.
func (p *Plans[S]) Init(a *membuf.Arena) { p.recvBufs.Init(a) }

// Reset drops the plans and returns the receive slabs, ready for a
// rebuild. The comm must be quiesced.
func (p *Plans[S]) Reset() {
	p.SendPlans = p.SendPlans[:0]
	p.RecvPlans = p.RecvPlans[:0]
	p.recvBufs.ReleaseAll()
}

// AddSend appends an outgoing message plan.
func (p *Plans[S]) AddSend(pl Plan[S]) { p.SendPlans = append(p.SendPlans, pl) }

// AddRecv appends an incoming message plan and grabs its pooled receive
// slab, sized for width variables.
//
//amr:hot allocs=0
func (p *Plans[S]) AddRecv(pl Plan[S], width int) {
	p.RecvPlans = append(p.RecvPlans, pl)
	p.recvBufs.Grab(pl.Cells * width)
}

// RecvBuf returns the pooled slab backing RecvPlans[i].
func (p *Plans[S]) RecvBuf(i int) []float64 { return p.recvBufs.Buf(i) }

// Close returns the receive slabs to the arena.
func (p *Plans[S]) Close() { p.recvBufs.ReleaseAll() }
