package driver

import (
	"fmt"
	"math"

	"miniamr/internal/membuf"
)

// Oracle is the cross-variant checksum oracle: it records every validated
// global checksum and rejects drift beyond a relative tolerance between
// consecutive validations. All variants of an application feed it the
// same bit-deterministic global sums, so histories compare with
// math.Float64bits equality across variants.
type Oracle struct {
	// Tolerance is the admissible relative drift between consecutive
	// checksums.
	Tolerance float64
	// History holds every accepted global checksum in order.
	History [][]float64

	prev []float64 // last validated sums, nil right after Reset
}

// Accept records a reduced global checksum and validates it against the
// previous one. The caller passes a fresh slice (the collective's
// result); the oracle retains it.
//
//amr:det
func (o *Oracle) Accept(global []float64) error {
	o.History = append(o.History, global)
	if o.prev != nil {
		for v := range global {
			ref := math.Abs(o.prev[v])
			if ref < 1e-12 {
				ref = 1e-12
			}
			if math.Abs(global[v]-o.prev[v]) > o.Tolerance*ref {
				return fmt.Errorf("driver: checksum validation failed: variable %d drifted from %v to %v (tolerance %v)",
					v, o.prev[v], global[v], o.Tolerance)
			}
		}
	}
	o.prev = global
	return nil
}

// Reset clears the drift baseline (the history stays). Applications call
// it when the discrete state legitimately changes between checksums —
// e.g. coarsening after a refinement epoch.
func (o *Oracle) Reset() { o.prev = nil }

// CombineSums folds per-block per-variable sums into deterministic local
// sums: blocks are combined in the caller's key order so the result is
// bit-identical regardless of which worker produced each block's sums.
// The result is a pooled arena buffer; the caller owns it and must put it
// back (typically after the global reduction).
//
//amr:det
func CombineSums[K comparable](a *membuf.Arena, vars int, blocks []K, perBlock map[K][]float64) []float64 {
	out := a.GetFloat64(vars)
	clear(out)
	for _, k := range blocks {
		sums := perBlock[k]
		for v := range sums {
			out[v] += sums[v]
		}
	}
	return out
}
