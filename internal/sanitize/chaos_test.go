package sanitize_test

import (
	"strings"
	"testing"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
)

// TestHealingPartitionDoesNotTripWatchdog drops every primary
// transmission so each message is only delivered by a retransmission that
// fires well after the deadlock grace period. While the retry is pending
// both ranks sit hard-blocked with the event counter frozen — exactly the
// picture a deadlock presents — and only the in-transit veto separates
// them. The run must complete with no deadlock report.
func TestHealingPartitionDoesNotTripWatchdog(t *testing.T) {
	t.Parallel()
	san := sanitize.New(sanitize.Options{DeadlockGrace: 30 * time.Millisecond})
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	drop := simnet.LinkFaults{Drop: 1}
	inj := simnet.NewInjector(simnet.Faults{Seed: 7, Intra: drop, Inter: drop})
	w.EnableChaos(inj, mpi.Resilience{RetryTimeout: 120 * time.Millisecond, MaxRetries: 10})
	san.Attach(w)
	err := w.Run(func(c *mpi.Comm) {
		buf := make([]int, 1)
		for round := 0; round < 2; round++ {
			switch c.Rank() {
			case 0:
				if err := c.Send([]int{round}, 1, 5); err != nil {
					panic(err)
				}
				if _, err := c.Recv(buf, 1, 6); err != nil {
					panic(err)
				}
			case 1:
				if _, err := c.Recv(buf, 0, 5); err != nil {
					panic(err)
				}
				if err := c.Send(buf, 0, 6); err != nil {
					panic(err)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := inj.Stats().Drops; got == 0 {
		t.Fatal("no drops injected; the scenario exercised nothing")
	}
	if got := w.ChaosStats().Retransmits; got == 0 {
		t.Fatal("no retransmissions happened; messages were never at risk")
	}
	for _, r := range san.Finish() {
		if r.Check == sanitize.KindDeadlock {
			t.Fatalf("healing faults tripped the deadlock watchdog: %s", r.Msg)
		}
	}
}

// TestPermanentPartitionAbortsNamingRanks cuts the 0->1 link outright:
// the retransmit budget exhausts, LinkDead removes the doomed message
// from the in-transit count, and the watchdog must then report a genuine
// deadlock whose description names the partitioned link.
func TestPermanentPartitionAbortsNamingRanks(t *testing.T) {
	t.Parallel()
	san := sanitize.New(sanitize.Options{DeadlockGrace: 40 * time.Millisecond})
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	inj := simnet.NewInjector(simnet.Faults{Seed: 7, Cut: [][2]int{{0, 1}}})
	w.EnableChaos(inj, mpi.Resilience{RetryTimeout: 2 * time.Millisecond, MaxRetries: 3})
	san.Attach(w)
	err := w.Run(func(c *mpi.Comm) {
		buf := make([]int, 1)
		switch c.Rank() {
		case 0:
			if err := c.Send([]int{1}, 1, 5); err != nil {
				panic(err)
			}
			_, _ = c.Recv(buf, 1, 6) // aborted: the reply never comes
		case 1:
			_, _ = c.Recv(buf, 0, 5) // aborted: the cut link eats the message
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := w.ChaosStats().Abandoned; got == 0 {
		t.Fatal("no message was abandoned; the cut link did not bite")
	}
	var dl *sanitize.Report
	for _, r := range san.Finish() {
		if r.Check == sanitize.KindDeadlock {
			rc := r
			dl = &rc
			break
		}
	}
	if dl == nil {
		t.Fatal("permanent partition produced no deadlock report")
	}
	if !strings.Contains(dl.Msg, "partitioned") || !strings.Contains(dl.Msg, "0->1") {
		t.Fatalf("deadlock report does not name the partitioned link 0->1: %s", dl.Msg)
	}
}
