// Package sanitize is amrsan, the opt-in runtime sanitizer of the
// reproduction: cheap-when-off instrumentation hooks threaded through the
// task runtime, the MPI transport and the buffer arena, verifying at run
// time the invariants the paper's correctness argument rests on and that
// amrlint can only approximate statically.
//
// Three checker families feed one report sink:
//
//   - Dependency races (dep.go): each task's declared access set is
//     recorded at spawn; tasks report their actual reads/writes through
//     NoteRead/NoteWrite. Two concurrently-schedulable tasks with
//     overlapping accesses (at least one a write) that the dependency
//     graph does not order, a write through a region declared only `in`,
//     and one buffer bound under two distinct dependency keys are all
//     violations.
//   - MPI deadlock and matching (mpimon.go): a wait-for graph over ranks
//     blocked in Recv/Wait/collectives, watched by a grace-period
//     watchdog (cycle and all-blocked detection, with abort so stuck
//     seeded tests terminate); plus end-of-run audits of never-received
//     messages, dangling posted receives and collective divergence.
//   - Lease leaks (leasemon.go): every live arena lease is tracked with
//     its creation stack, so a leak report names the allocation site
//     instead of a bare count.
//
// A Sanitizer is attached per job: Attach wires the MPI world and its
// arena, Observer(rank) yields the per-rank task observer, Finish stops
// the watchdog, runs the audits and returns the collected reports. With
// no sanitizer attached every hook in the instrumented packages compiles
// to a nil check, preserving the zero-allocation pooled message path.
package sanitize

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"miniamr/internal/mpi"
)

// Kind labels a report's checker.
type Kind string

// The report kinds amrsan emits.
const (
	// KindDepRace: two concurrently-schedulable tasks with conflicting,
	// graph-unordered accesses to one region.
	KindDepRace Kind = "dep-race"
	// KindWriteViaIn: a task wrote a region it declared only as in.
	KindWriteViaIn Kind = "write-via-in"
	// KindKeyAlias: one buffer bound under two distinct dependency keys.
	KindKeyAlias Kind = "key-alias"
	// KindDeadlock: ranks provably stuck in receive-side waits.
	KindDeadlock Kind = "deadlock"
	// KindUnreceived: a message was sent but never matched by a receive.
	KindUnreceived Kind = "unreceived-message"
	// KindDanglingRecv: a posted receive never completed.
	KindDanglingRecv Kind = "dangling-recv"
	// KindCollectiveMismatch: ranks disagreed on a collective's shape
	// (name, op, root, count) or executed different collective counts.
	KindCollectiveMismatch Kind = "collective-mismatch"
	// KindLeaseLeak: an arena lease was never fully released.
	KindLeaseLeak Kind = "lease-leak"
)

// Report is one structured sanitizer finding.
type Report struct {
	// Check names the violated invariant.
	Check Kind
	// Rank is the rank the violation was observed on, or -1 when the
	// finding is job-global (collective divergence, message audits).
	Rank int
	// Task is the label of the offending task, when one is known.
	Task string
	// Key renders the region key, tag or lease the finding is about.
	Key string
	// Msg is the human-readable diagnosis.
	Msg string
	// Stack is the capture site (creation or detection), when available.
	Stack string
}

// String renders the report on one line (plus the stack, if captured).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "amrsan: %s", r.Check)
	if r.Rank >= 0 {
		fmt.Fprintf(&b, " [rank %d]", r.Rank)
	}
	if r.Task != "" {
		fmt.Fprintf(&b, " task %q", r.Task)
	}
	if r.Key != "" {
		fmt.Fprintf(&b, " key %s", r.Key)
	}
	fmt.Fprintf(&b, ": %s", r.Msg)
	if r.Stack != "" {
		fmt.Fprintf(&b, "\n%s", r.Stack)
	}
	return b.String()
}

// Options tune a Sanitizer.
type Options struct {
	// DeadlockGrace is how long the blocked-rank condition must hold with
	// no transport activity before a deadlock is reported and the blocked
	// operations aborted. Zero selects a default safe for slow CI hosts;
	// seeded-deadlock tests shorten it.
	DeadlockGrace time.Duration
}

// defaultDeadlockGrace trades detection latency against false suspicion
// on hosts where a compute phase can stall transport activity for a
// while (race detector, loaded CI machines).
const defaultDeadlockGrace = 2 * time.Second

// Sanitizer collects findings from all checkers of one job. Methods are
// safe for concurrent use.
type Sanitizer struct {
	mu       sync.Mutex
	reports  []Report
	seen     map[string]bool // dedup: one report per (kind, key, parties)
	grace    time.Duration
	mpimon   *mpiMonitor
	leases   *leaseMonitor
	deps     []*DepSanitizer
	finished bool
}

// New creates an empty sanitizer.
func New(opts Options) *Sanitizer {
	g := opts.DeadlockGrace
	if g <= 0 {
		g = defaultDeadlockGrace
	}
	return &Sanitizer{seen: make(map[string]bool), grace: g}
}

// Attach wires the sanitizer into a world: transport monitoring (deadlock
// watchdog, matching audit, collective audit) and lease tracking on the
// world's arena. It must be called before World.Run; one Sanitizer
// watches one world.
func (s *Sanitizer) Attach(w *mpi.World) {
	s.mu.Lock()
	if s.mpimon != nil {
		s.mu.Unlock()
		panic("sanitize: Attach called twice")
	}
	s.mpimon = newMPIMonitor(s, w.Size(), s.grace)
	s.leases = newLeaseMonitor(s)
	s.mu.Unlock()
	w.SetMonitor(s.mpimon)
	w.Arena().SetMonitor(s.leases)
	go s.mpimon.watchdog()
}

// Observer returns the dependency-race sanitizer for one rank, to be
// passed as task.Options.Observer and used for NoteRead/NoteWrite/
// BindRegion calls from that rank's driver.
func (s *Sanitizer) Observer(rank int) *DepSanitizer {
	ds := newDepSanitizer(s, rank)
	s.mu.Lock()
	s.deps = append(s.deps, ds)
	s.mu.Unlock()
	return ds
}

// report files a finding, deduplicating on key: violations that repeat
// every stage (the same undeclared overlap, say) yield one report.
func (s *Sanitizer) report(dedup string, r Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dedup != "" && s.seen[dedup] {
		return
	}
	if dedup != "" {
		s.seen[dedup] = true
	}
	s.reports = append(s.reports, r)
}

// Reports returns a snapshot of the findings so far, in a deterministic
// order (by kind, then rank, then key, then message, then stack). The
// stack tiebreak matters: same-site leak reports agree on every other
// field, and without it the order among them would follow insertion
// order, which the collection maps do not pin.
func (s *Sanitizer) Reports() []Report {
	s.mu.Lock()
	out := make([]Report, len(s.reports))
	copy(out, s.reports)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		if out[i].Msg != out[j].Msg {
			return out[i].Msg < out[j].Msg
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// Finish stops the deadlock watchdog, runs the end-of-run audits
// (unreceived messages, dangling receives, collective divergence, leaked
// leases) and returns all findings. It must be called after the job's
// ranks have returned; it is idempotent.
func (s *Sanitizer) Finish() []Report {
	s.mu.Lock()
	done := s.finished
	s.finished = true
	mm, lm := s.mpimon, s.leases
	s.mu.Unlock()
	if !done {
		if mm != nil {
			mm.stop()
			mm.audit()
		}
		if lm != nil {
			lm.audit()
		}
	}
	return s.Reports()
}

// captureStack renders the calling goroutine's stack, skipping `skip`
// frames above captureStack itself, trimmed to the interesting depth.
func captureStack(skip int) string {
	var pcs [16]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	if n == 0 {
		return ""
	}
	frames := runtime.CallersFrames(pcs[:n])
	var b strings.Builder
	for i := 0; i < 8; i++ {
		f, more := frames.Next()
		if f.Function != "" {
			fmt.Fprintf(&b, "    %s\n        %s:%d\n", f.Function, f.File, f.Line)
		}
		if !more {
			break
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
