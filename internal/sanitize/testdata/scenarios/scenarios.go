// Package scenarios is the seeded-violation corpus for amrsan: each
// function is a small program that commits exactly one class of
// violation and returns the sanitizer's findings. The sanitizer tests
// assert that every scenario trips its expected report kind at the
// expected location — keeping the checkers honest the same way the
// amrlint corpus keeps the static analyses honest.
//
// The package lives under testdata so repo-wide go-tool walks and
// amrlint skip it, yet it is a real importable package so the scenarios
// compile against the live API.
package scenarios

import (
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
	"miniamr/internal/task"
)

// UndeclaredOverlap runs two tasks that both write one region; only the
// first declares the access. The gate forces both interleavings to
// overlap in time, so the race is reported no matter which runs first.
func UndeclaredOverlap() []sanitize.Report {
	san := sanitize.New(sanitize.Options{})
	ds := san.Observer(0)
	rt := task.MustNewRuntime(task.Options{Workers: 2, Observer: ds})
	defer rt.Shutdown()

	const key = "block{0}"
	gate := make(chan struct{})
	rt.Spawn("writer-declared", func(t *task.Task) {
		ds.NoteWrite(t, key)
		<-gate
	}, task.Out(key)...)
	rt.Spawn("writer-undeclared", func(t *task.Task) {
		ds.NoteWrite(t, key) // no declared access: races with writer-declared
		close(gate)
	})
	rt.Wait()
	return san.Finish()
}

// WriteViaIn runs a task that declares a region as in, then writes it.
func WriteViaIn() []sanitize.Report {
	san := sanitize.New(sanitize.Options{})
	ds := san.Observer(0)
	rt := task.MustNewRuntime(task.Options{Workers: 1, Observer: ds})
	defer rt.Shutdown()

	const key = "block{3}"
	rt.Spawn("sneaky-writer", func(t *task.Task) {
		ds.NoteWrite(t, key) // declared only as in below
	}, task.In(key)...)
	rt.Wait()
	return san.Finish()
}

// KeyAlias binds one buffer under two distinct dependency keys, so tasks
// addressing it through either key would never be ordered by the graph.
func KeyAlias() []sanitize.Report {
	san := sanitize.New(sanitize.Options{})
	ds := san.Observer(0)
	buf := make([]float64, 8)
	ds.BindRegion("section{0,east}", &buf[0])
	ds.BindRegion("section{1,west}", &buf[0]) // same storage, different key
	return san.Finish()
}

// TagMismatchDeadlock runs two ranks whose tags never match: rank 0
// sends tag 5 then receives tag 9, rank 1 receives tag 7. Nothing can
// progress; the watchdog must report the deadlock and abort both blocked
// receives so the job terminates. The end-of-run audits additionally
// flag the never-received message and both dangling posted receives.
func TagMismatchDeadlock() []sanitize.Report {
	san := sanitize.New(sanitize.Options{DeadlockGrace: 100 * time.Millisecond})
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	san.Attach(w)
	_ = w.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			_ = c.Send([]int{42}, 1, 5)         // sits in rank 1's unexpected queue
			_, _ = c.Recv(make([]int, 1), 1, 9) // aborted by the watchdog
		case 1:
			_, _ = c.Recv(make([]int, 1), 0, 7) // tag mismatch: never matches tag 5
		}
	})
	return san.Finish()
}

// DivergentAllreduce has the two ranks enter the same Allreduce with
// different reduction operators. The exchange pattern is op-independent,
// so the run completes (with nonsense values); only the collective audit
// catches the divergence.
func DivergentAllreduce() []sanitize.Report {
	san := sanitize.New(sanitize.Options{})
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	san.Attach(w)
	_ = w.Run(func(c *mpi.Comm) {
		op := mpi.Sum
		if c.Rank() == 1 {
			op = mpi.Max
		}
		if _, err := c.AllreduceFloat64([]float64{1, 2}, op); err != nil {
			panic(err)
		}
	})
	return san.Finish()
}
