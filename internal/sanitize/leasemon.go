package sanitize

import (
	"fmt"
	"sort"
	"sync"

	"miniamr/internal/membuf"
)

// leaseMonitor implements membuf.Monitor: it keeps every live lease's
// creation stack so an end-of-run leak report names the allocation site
// instead of a bare survivor count.
type leaseMonitor struct {
	s *Sanitizer

	mu   sync.Mutex
	live map[*membuf.Lease]leaseRec
}

type leaseRec struct {
	kind  membuf.Kind
	n     int
	stack string
}

func newLeaseMonitor(s *Sanitizer) *leaseMonitor {
	return &leaseMonitor{s: s, live: make(map[*membuf.Lease]leaseRec)}
}

// LeaseCreated implements membuf.Monitor.
func (lm *leaseMonitor) LeaseCreated(l *membuf.Lease, kind membuf.Kind, n int) {
	rec := leaseRec{kind: kind, n: n, stack: captureStack(2)}
	lm.mu.Lock()
	lm.live[l] = rec
	lm.mu.Unlock()
}

// LeaseReleased implements membuf.Monitor. The pointer is used only as a
// map key; the lease is never dereferenced after this call.
func (lm *leaseMonitor) LeaseReleased(l *membuf.Lease) {
	lm.mu.Lock()
	delete(lm.live, l)
	lm.mu.Unlock()
}

// audit reports every lease still live at the end of the run. The live
// set is keyed by lease pointer, so the records are sorted before
// reporting to keep the rendered report bytes run-independent.
func (lm *leaseMonitor) audit() {
	lm.mu.Lock()
	recs := make([]leaseRec, 0, len(lm.live))
	for _, rec := range lm.live {
		recs = append(recs, rec)
	}
	lm.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.n != b.n {
			return a.n < b.n
		}
		return a.stack < b.stack
	})
	for _, rec := range recs {
		lm.s.report("", Report{
			Check: KindLeaseLeak,
			Rank:  -1,
			Key:   fmt.Sprintf("%v[%d]", rec.kind, rec.n),
			Msg:   "arena lease never released; leased at:",
			Stack: rec.stack,
		})
	}
}
