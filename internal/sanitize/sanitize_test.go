package sanitize_test

import (
	"strings"
	"testing"

	"miniamr/internal/sanitize"
	"miniamr/internal/sanitize/testdata/scenarios"
)

func kinds(reports []sanitize.Report) map[sanitize.Kind]int {
	m := make(map[sanitize.Kind]int)
	for _, r := range reports {
		m[r.Check]++
	}
	return m
}

// find returns the first report of the given kind, failing the test if
// the scenario did not produce one.
func find(t *testing.T, reports []sanitize.Report, k sanitize.Kind) sanitize.Report {
	t.Helper()
	for _, r := range reports {
		if r.Check == k {
			return r
		}
	}
	t.Fatalf("no %s report; got %v", k, reports)
	return sanitize.Report{}
}

func TestUndeclaredOverlap(t *testing.T) {
	reports := scenarios.UndeclaredOverlap()
	r := find(t, reports, sanitize.KindDepRace)
	if r.Rank != 0 {
		t.Errorf("rank = %d, want 0", r.Rank)
	}
	if r.Key != "block{0}" {
		t.Errorf("key = %q, want block{0}", r.Key)
	}
	if !strings.Contains(r.Msg, "writer-declared") && !strings.Contains(r.Task, "writer-declared") {
		t.Errorf("report does not name writer-declared: %v", r)
	}
	if r.Stack == "" {
		t.Error("dep-race report has no stack")
	}
	for k := range kinds(reports) {
		if k != sanitize.KindDepRace {
			t.Errorf("unexpected report kind %s", k)
		}
	}
}

func TestWriteViaIn(t *testing.T) {
	reports := scenarios.WriteViaIn()
	r := find(t, reports, sanitize.KindWriteViaIn)
	if r.Task != "sneaky-writer" {
		t.Errorf("task = %q, want sneaky-writer", r.Task)
	}
	if r.Key != "block{3}" {
		t.Errorf("key = %q, want block{3}", r.Key)
	}
	// A write through an in-declaration is also an undeclared write for
	// the race checker, but with no concurrent reader no race fires.
	for k := range kinds(reports) {
		if k != sanitize.KindWriteViaIn {
			t.Errorf("unexpected report kind %s", k)
		}
	}
}

func TestKeyAlias(t *testing.T) {
	reports := scenarios.KeyAlias()
	r := find(t, reports, sanitize.KindKeyAlias)
	if !strings.Contains(r.Msg, "section{0,east}") {
		t.Errorf("report does not name the first key: %v", r)
	}
	if r.Key != "section{1,west}" {
		t.Errorf("key = %q, want section{1,west}", r.Key)
	}
}

func TestTagMismatchDeadlock(t *testing.T) {
	reports := scenarios.TagMismatchDeadlock()
	r := find(t, reports, sanitize.KindDeadlock)
	if !strings.Contains(r.Msg, "rank 0") || !strings.Contains(r.Msg, "rank 1") {
		t.Errorf("deadlock report does not describe both ranks: %v", r)
	}
	// The audits must also explain the stuck messages: one unreceived
	// send (tag 5) and two dangling posted receives (tags 7 and 9).
	u := find(t, reports, sanitize.KindUnreceived)
	if u.Key != "tag 5" || u.Rank != 1 {
		t.Errorf("unreceived = %+v, want tag 5 at rank 1", u)
	}
	got := kinds(reports)
	if got[sanitize.KindDanglingRecv] != 2 {
		t.Errorf("dangling-recv count = %d, want 2 (tags 7 and 9)", got[sanitize.KindDanglingRecv])
	}
	// The stuck message still holds its arena lease, so a lease-leak
	// report is a legitimate consequence of the deadlock.
	for k := range got {
		switch k {
		case sanitize.KindDeadlock, sanitize.KindUnreceived,
			sanitize.KindDanglingRecv, sanitize.KindLeaseLeak:
		default:
			t.Errorf("unexpected report kind %s", k)
		}
	}
}

func TestDivergentAllreduce(t *testing.T) {
	reports := scenarios.DivergentAllreduce()
	r := find(t, reports, sanitize.KindCollectiveMismatch)
	if !strings.Contains(r.Msg, "Sum") || !strings.Contains(r.Msg, "Max") {
		t.Errorf("mismatch report does not name both ops: %v", r)
	}
	for k := range kinds(reports) {
		if k != sanitize.KindCollectiveMismatch {
			t.Errorf("unexpected report kind %s", k)
		}
	}
}

func TestReportString(t *testing.T) {
	r := sanitize.Report{
		Check: sanitize.KindDepRace,
		Rank:  2,
		Task:  "stencil",
		Key:   "block{7}",
		Msg:   "boom",
		Stack: "    at main",
	}
	s := r.String()
	for _, want := range []string{"dep-race", "rank 2", "stencil", "block{7}", "boom", "at main"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	global := sanitize.Report{Check: sanitize.KindDeadlock, Rank: -1, Msg: "stuck"}
	if strings.Contains(global.String(), "rank") {
		t.Errorf("job-global report should not render a rank: %q", global.String())
	}
}

func TestFinishIdempotent(t *testing.T) {
	reports := scenarios.KeyAlias()
	if len(reports) != 1 {
		t.Fatalf("want exactly 1 report, got %v", reports)
	}
}
