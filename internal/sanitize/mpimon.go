package sanitize

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"miniamr/internal/mpi"
)

// route keys the send/match accounting: actual (src, dest, tag) for
// messages, (rank, pattern-src, pattern-tag) for posted receives.
type route struct {
	a, b, tag int
}

// collRec is one rank's record of entering a collective.
type collRec struct {
	name  string
	op    string
	root  int
	count int
}

// blockRec is one blocked receive-side operation.
type blockRec struct {
	info  mpi.BlockInfo
	abort func(error)
}

// mpiMonitor implements mpi.Monitor: transport accounting for the
// end-of-run audits plus the live wait-for state the deadlock watchdog
// reads. Every event bumps a monotonic counter; the watchdog only trusts
// a suspicion that survives a grace period with that counter frozen.
type mpiMonitor struct {
	s     *Sanitizer
	ranks int
	grace time.Duration

	mu          sync.Mutex
	events      uint64
	inTransit   int            // sent but not yet delivered to a matching engine
	faults      map[string]int // injected-fault census by kind
	deadLinks   map[[2]int]int // (src,dest) -> abandoned messages
	sent        map[route]int
	matched     map[route]int
	posted      map[route]int
	postMatched map[route]int
	blocks      map[uint64]*blockRec
	nextToken   uint64
	colls       map[int]map[int]collRec // seq -> rank -> record
	collCount   map[int]int             // rank -> collectives entered
	ranksDone   map[int]bool
	deadlocked  bool

	//amr:chan owner=stop
	stopCh   chan struct{}
	stopOnce sync.Once
}

func newMPIMonitor(s *Sanitizer, ranks int, grace time.Duration) *mpiMonitor {
	return &mpiMonitor{
		s:           s,
		ranks:       ranks,
		grace:       grace,
		faults:      make(map[string]int),
		deadLinks:   make(map[[2]int]int),
		sent:        make(map[route]int),
		matched:     make(map[route]int),
		posted:      make(map[route]int),
		postMatched: make(map[route]int),
		blocks:      make(map[uint64]*blockRec),
		colls:       make(map[int]map[int]collRec),
		collCount:   make(map[int]int),
		ranksDone:   make(map[int]bool),
	}
}

func (m *mpiMonitor) stop() {
	m.stopOnce.Do(func() {
		if m.stopCh != nil {
			close(m.stopCh)
		}
	})
}

// MessageSent implements mpi.Monitor.
func (m *mpiMonitor) MessageSent(src, dest, tag int) {
	m.mu.Lock()
	m.events++
	m.inTransit++
	m.sent[route{src, dest, tag}]++
	m.mu.Unlock()
}

// MessageDelivered implements mpi.Monitor.
func (m *mpiMonitor) MessageDelivered(src, dest, tag int) {
	m.mu.Lock()
	m.events++
	m.inTransit--
	m.mu.Unlock()
}

// MessageMatched implements mpi.Monitor.
func (m *mpiMonitor) MessageMatched(dest, src, tag, postedSrc, postedTag int) {
	m.mu.Lock()
	m.events++
	m.matched[route{src, dest, tag}]++
	m.postMatched[route{dest, postedSrc, postedTag}]++
	m.mu.Unlock()
}

// RecvPosted implements mpi.Monitor.
func (m *mpiMonitor) RecvPosted(rank, src, tag int) {
	m.mu.Lock()
	m.events++
	m.posted[route{rank, src, tag}]++
	m.mu.Unlock()
}

// BlockEnter implements mpi.Monitor.
func (m *mpiMonitor) BlockEnter(info mpi.BlockInfo, abort func(error)) uint64 {
	m.mu.Lock()
	m.events++
	m.nextToken++
	token := m.nextToken
	m.blocks[token] = &blockRec{info: info, abort: abort}
	m.mu.Unlock()
	return token
}

// BlockExit implements mpi.Monitor.
func (m *mpiMonitor) BlockExit(token uint64) {
	m.mu.Lock()
	m.events++
	delete(m.blocks, token)
	m.mu.Unlock()
}

// CollectiveEnter implements mpi.Monitor.
func (m *mpiMonitor) CollectiveEnter(rank int, name, op string, root, count, seq int) {
	m.mu.Lock()
	m.events++
	byRank := m.colls[seq]
	if byRank == nil {
		byRank = make(map[int]collRec)
		m.colls[seq] = byRank
	}
	byRank[rank] = collRec{name: name, op: op, root: root, count: count}
	m.collCount[rank]++
	m.mu.Unlock()
}

// RankDone implements mpi.Monitor.
func (m *mpiMonitor) RankDone(rank int) {
	m.mu.Lock()
	m.events++
	m.ranksDone[rank] = true
	m.mu.Unlock()
}

// FaultInjected implements mpi.FaultMonitor. An injected fault counts as
// transport activity: a dropped message stays in transit (the transport
// still owes a retransmit), so the watchdog's grace clock resets and a
// rank stalled behind a pending retry is never mistaken for deadlocked.
func (m *mpiMonitor) FaultInjected(kind string, src, dest, seq int) {
	m.mu.Lock()
	m.events++
	m.faults[kind]++
	m.mu.Unlock()
}

// LinkDead implements mpi.FaultMonitor. The transport abandoned one
// message after exhausting its retransmit budget: it will never reach a
// matching engine, so it leaves the in-transit count, and the link is
// recorded so a deadlock report can name the partitioned ranks.
func (m *mpiMonitor) LinkDead(src, dest int) {
	m.mu.Lock()
	m.events++
	m.inTransit--
	m.deadLinks[[2]int{src, dest}]++
	m.mu.Unlock()
}

// watchdog polls the wait-for state. A suspicion — no message in transit
// and either every unfinished rank hard-blocked, or a cycle among the
// hard waits-on-rank edges — must hold with the event counter frozen for
// the full grace period before it is reported; any transport activity
// resets the clock. On report, every implicated blocked operation is
// aborted so the stuck job terminates deterministically.
func (m *mpiMonitor) watchdog() {
	m.mu.Lock()
	if m.stopCh == nil {
		m.stopCh = make(chan struct{})
	}
	stopCh := m.stopCh
	m.mu.Unlock()

	interval := m.grace / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	needed := int(m.grace / interval)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var lastEvents uint64
	stable := 0
	for {
		select {
		case <-stopCh:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		suspicious, victims, desc := m.suspicionLocked()
		ev := m.events
		if !suspicious || ev != lastEvents {
			lastEvents = ev
			stable = 0
			m.mu.Unlock()
			continue
		}
		stable++
		if stable < needed {
			m.mu.Unlock()
			continue
		}
		m.deadlocked = true
		aborts := make([]func(error), 0, len(victims))
		for _, b := range victims {
			if b.abort != nil {
				aborts = append(aborts, b.abort)
			}
		}
		m.mu.Unlock()
		m.s.report("deadlock", Report{
			Check: KindDeadlock,
			Rank:  -1,
			Msg:   desc,
		})
		err := fmt.Errorf("amrsan: deadlock detected, blocked operation aborted: %w", mpi.ErrAborted)
		for _, abort := range aborts {
			abort(err)
		}
		return
	}
}

// suspicionLocked evaluates the deadlock condition. Caller holds m.mu.
// A positive in-transit count vetoes any suspicion: under fault injection
// a dropped message stays in transit until acked or abandoned, so "stalled
// by an injected fault, retry pending" never reads as a deadlock. The
// count can dip below zero transiently when a late duplicate delivery and
// a LinkDead race their decrements, so only > 0 vetoes.
func (m *mpiMonitor) suspicionLocked() (bool, []*blockRec, string) {
	if m.deadlocked || m.inTransit > 0 {
		return false, nil, ""
	}
	hard := make(map[int][]*blockRec)
	for _, b := range m.blocks {
		if !b.info.Soft {
			hard[b.info.Rank] = append(hard[b.info.Rank], b)
		}
	}
	if len(hard) == 0 {
		return false, nil, ""
	}

	allBlocked := true
	for r := 0; r < m.ranks; r++ {
		if !m.ranksDone[r] && len(hard[r]) == 0 {
			allBlocked = false
			break
		}
	}
	cycle := m.findCycleLocked(hard)

	if !allBlocked && cycle == nil {
		return false, nil, ""
	}

	var victims []*blockRec
	var desc strings.Builder
	if allBlocked {
		desc.WriteString("every unfinished rank is blocked in a receive-side wait")
		for r := 0; r < m.ranks; r++ {
			victims = append(victims, hard[r]...)
		}
	} else {
		fmt.Fprintf(&desc, "wait-for cycle among ranks %v", cycle)
		inCycle := make(map[int]bool, len(cycle))
		for _, r := range cycle {
			inCycle[r] = true
		}
		for r := range hard {
			if inCycle[r] {
				victims = append(victims, hard[r]...)
			}
		}
	}
	if len(m.deadLinks) > 0 {
		links := make([][2]int, 0, len(m.deadLinks))
		for l := range m.deadLinks {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i][0] != links[j][0] {
				return links[i][0] < links[j][0]
			}
			return links[i][1] < links[j][1]
		})
		var parts []string
		for _, l := range links {
			parts = append(parts, fmt.Sprintf("%d->%d (%d message(s) abandoned)",
				l[0], l[1], m.deadLinks[l]))
		}
		fmt.Fprintf(&desc, "; link(s) presumed partitioned after retransmit budget exhausted: %s",
			strings.Join(parts, ", "))
	}
	desc.WriteString(": ")
	desc.WriteString(m.describeBlocksLocked(hard))
	return true, victims, desc.String()
}

// findCycleLocked searches the waits-on-rank digraph (hard blocks with a
// concrete peer; AnySource waits carry no edge — they could be satisfied
// by any future sender, so only all-blocked detection covers them) and
// returns the ranks of one cycle, or nil.
func (m *mpiMonitor) findCycleLocked(hard map[int][]*blockRec) []int {
	edges := make(map[int][]int)
	for r, bs := range hard {
		for _, b := range bs {
			if b.info.Peer >= 0 {
				edges[r] = append(edges[r], b.info.Peer)
			}
		}
	}
	const (
		unseen = iota
		onPath
		done
	)
	state := make(map[int]int)
	var path []int
	var cycle []int
	var visit func(r int) bool
	visit = func(r int) bool {
		state[r] = onPath
		path = append(path, r)
		for _, p := range edges[r] {
			switch state[p] {
			case onPath:
				for i, pr := range path {
					if pr == p {
						cycle = append([]int(nil), path[i:]...)
						return true
					}
				}
			case unseen:
				if visit(p) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		state[r] = done
		return false
	}
	ranks := make([]int, 0, len(edges))
	for r := range edges {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if state[r] == unseen && visit(r) {
			sort.Ints(cycle)
			return cycle
		}
	}
	return nil
}

// describeBlocksLocked renders every current block (hard and soft) for
// the deadlock report. Caller holds m.mu.
func (m *mpiMonitor) describeBlocksLocked(hard map[int][]*blockRec) string {
	var lines []string
	for _, b := range m.blocks {
		src := "any"
		if b.info.Peer >= 0 {
			src = fmt.Sprintf("%d", b.info.Peer)
		}
		kind := ""
		if b.info.Soft {
			kind = ", suspended task"
		}
		lines = append(lines, fmt.Sprintf("rank %d in %s(src=%s, tag=%s%s)",
			b.info.Rank, b.info.Op, src, tagString(b.info.Tag), kind))
	}
	sort.Strings(lines)
	return strings.Join(lines, "; ")
}

// tagString renders a tag, decoding the reserved collective space.
func tagString(tag int) string {
	if tag == mpi.AnyTag {
		return "any"
	}
	if tag >= mpi.MaxUserTag {
		return fmt.Sprintf("collective#%d", tag-mpi.MaxUserTag)
	}
	return fmt.Sprintf("%d", tag)
}

// audit runs the end-of-run matching and collective checks.
func (m *mpiMonitor) audit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.auditMessagesLocked()
	m.auditCollectivesLocked()
}

func (m *mpiMonitor) auditMessagesLocked() {
	routes := make([]route, 0, len(m.sent))
	for rt := range m.sent {
		routes = append(routes, rt)
	}
	sortRoutes(routes)
	for _, rt := range routes {
		if lost := m.sent[rt] - m.matched[rt]; lost > 0 {
			m.s.report(fmt.Sprintf("unreceived|%d|%d|%d", rt.a, rt.b, rt.tag), Report{
				Check: KindUnreceived,
				Rank:  rt.b,
				Key:   fmt.Sprintf("tag %s", tagString(rt.tag)),
				Msg: fmt.Sprintf("%d message(s) from rank %d to rank %d were never received",
					lost, rt.a, rt.b),
			})
		}
	}
	routes = routes[:0]
	for rt := range m.posted {
		routes = append(routes, rt)
	}
	sortRoutes(routes)
	for _, rt := range routes {
		if open := m.posted[rt] - m.postMatched[rt]; open > 0 {
			src := "any"
			if rt.b >= 0 {
				src = fmt.Sprintf("%d", rt.b)
			}
			m.s.report(fmt.Sprintf("dangling|%d|%d|%d", rt.a, rt.b, rt.tag), Report{
				Check: KindDanglingRecv,
				Rank:  rt.a,
				Key:   fmt.Sprintf("tag %s", tagString(rt.tag)),
				Msg: fmt.Sprintf("%d posted receive(s) from src %s never completed",
					open, src),
			})
		}
	}
}

func sortRoutes(routes []route) {
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].a != routes[j].a {
			return routes[i].a < routes[j].a
		}
		if routes[i].b != routes[j].b {
			return routes[i].b < routes[j].b
		}
		return routes[i].tag < routes[j].tag
	})
}

func (m *mpiMonitor) auditCollectivesLocked() {
	// Participation: every rank that entered any collective must have
	// entered the same number of them.
	counts := make(map[int][]int) // collective count -> ranks
	for r := 0; r < m.ranks; r++ {
		counts[m.collCount[r]] = append(counts[m.collCount[r]], r)
	}
	if len(counts) > 1 {
		var parts []string
		for n, ranks := range counts {
			parts = append(parts, fmt.Sprintf("ranks %v entered %d", ranks, n))
		}
		sort.Strings(parts)
		m.s.report("coll-count", Report{
			Check: KindCollectiveMismatch,
			Rank:  -1,
			Msg:   "ranks executed differing numbers of collectives: " + strings.Join(parts, "; "),
		})
	}

	seqs := make([]int, 0, len(m.colls))
	for seq := range m.colls {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		byRank := m.colls[seq]
		ranks := make([]int, 0, len(byRank))
		for r := range byRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		ref := byRank[ranks[0]]
		for _, r := range ranks[1:] {
			got := byRank[r]
			var field, a, b string
			switch {
			case got.name != ref.name:
				field, a, b = "operation", ref.name, got.name
			case got.op != ref.op:
				field, a, b = "reduction op", ref.op, got.op
			case got.root != ref.root:
				field, a, b = "root", fmt.Sprint(ref.root), fmt.Sprint(got.root)
			case got.count != ref.count && got.count >= 0 && ref.count >= 0:
				field, a, b = "count", fmt.Sprint(ref.count), fmt.Sprint(got.count)
			default:
				continue
			}
			m.s.report(fmt.Sprintf("coll-mismatch|%d", seq), Report{
				Check: KindCollectiveMismatch,
				Rank:  r,
				Key:   fmt.Sprintf("collective #%d (%s)", seq, ref.name),
				Msg: fmt.Sprintf("divergent %s: rank %d used %s where rank %d used %s",
					field, r, b, ranks[0], a),
			})
			break
		}
	}
}
