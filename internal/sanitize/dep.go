package sanitize

import (
	"fmt"
	"sync"

	"miniamr/internal/task"
)

// DepSanitizer is the per-rank dependency-race checker. It implements
// task.Observer to mirror the dependency graph (declared access sets,
// edges, completions), and exposes NoteRead/NoteWrite for task bodies to
// report the regions they actually touch and BindRegion for drivers to
// register which storage a dependency key stands for.
//
// The happens-before oracle is exact for the runtime's semantics: task A
// is ordered before task B iff there is a chain from A to B of dependence
// edges and finished-before-spawned links (a task that fully finished
// before another was spawned is ordered with it through the runtime's
// lock). Conflicting accesses by unordered tasks are reportable: since
// correctly declared conflicts always produce an ordering edge, any
// unordered conflict involves an undeclared access.
type DepSanitizer struct {
	s    *Sanitizer
	rank int

	mu     sync.Mutex
	seq    uint64 // logical clock over spawn/finish events
	tasks  map[uint64]*taskRec
	shadow map[any]*regionRec
	binds  map[any]regionBind
}

type taskRec struct {
	label    string
	declared map[any]task.Mode
	preds    []uint64
	birthSeq uint64
	finSeq   uint64 // 0 while running
}

type regionAccess struct {
	id    uint64
	write bool
}

type regionRec struct {
	accs []regionAccess
}

type regionBind struct {
	key  any
	site string
}

func newDepSanitizer(s *Sanitizer, rank int) *DepSanitizer {
	return &DepSanitizer{
		s:      s,
		rank:   rank,
		tasks:  make(map[uint64]*taskRec),
		shadow: make(map[any]*regionRec),
		binds:  make(map[any]regionBind),
	}
}

// TaskSpawned implements task.Observer.
func (ds *DepSanitizer) TaskSpawned(id uint64, label string, accs []task.Access) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.seq++
	rec := &taskRec{
		label:    label,
		declared: make(map[any]task.Mode, len(accs)),
		birthSeq: ds.seq,
	}
	for _, a := range accs {
		// Repeated declarations of one key fold into their union: in+out
		// (in either order) behaves as inout.
		if old, had := rec.declared[a.Key]; had && old != a.Mode {
			rec.declared[a.Key] = task.ModeInOut
		} else {
			rec.declared[a.Key] = a.Mode
		}
	}
	ds.tasks[id] = rec
}

// TaskDependence implements task.Observer.
func (ds *DepSanitizer) TaskDependence(pred, succ uint64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if rec, ok := ds.tasks[succ]; ok {
		rec.preds = append(rec.preds, pred)
	}
}

// TaskFinished implements task.Observer.
func (ds *DepSanitizer) TaskFinished(id uint64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if rec, ok := ds.tasks[id]; ok {
		ds.seq++
		rec.finSeq = ds.seq
	}
}

// Quiesced implements task.Observer: everything before the quiescent
// point is ordered against everything after it, so the epoch's shadow
// state can be dropped, bounding memory across refinement epochs.
func (ds *DepSanitizer) Quiesced() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.tasks = make(map[uint64]*taskRec)
	ds.shadow = make(map[any]*regionRec)
	ds.binds = make(map[any]regionBind)
}

// NoteRead reports that the task is reading the region behind key.
func (ds *DepSanitizer) NoteRead(t *task.Task, key any) { ds.note(t, key, false) }

// NoteWrite reports that the task is writing the region behind key.
func (ds *DepSanitizer) NoteWrite(t *task.Task, key any) { ds.note(t, key, true) }

func (ds *DepSanitizer) note(t *task.Task, key any, write bool) {
	id := t.ID()
	ds.mu.Lock()
	rec, ok := ds.tasks[id]
	if !ok {
		// Task predates the current epoch's records (spawned before the
		// observer attached); nothing sound can be said about it.
		ds.mu.Unlock()
		return
	}
	if write {
		if m, declared := rec.declared[key]; declared && m == task.ModeIn {
			ds.mu.Unlock()
			ds.s.report(
				fmt.Sprintf("write-via-in|%d|%v|%s", ds.rank, key, rec.label),
				Report{
					Check: KindWriteViaIn,
					Rank:  ds.rank,
					Task:  rec.label,
					Key:   fmt.Sprintf("%v", key),
					Msg:   "task writes a region it declared only as in; successors may read it unordered",
					Stack: captureStack(2),
				})
			ds.mu.Lock()
		}
	}
	rr := ds.shadow[key]
	if rr == nil {
		rr = &regionRec{}
		ds.shadow[key] = rr
	}
	for _, pa := range rr.accs {
		if pa.id == id && pa.write == write {
			ds.mu.Unlock()
			return // already recorded and checked
		}
	}
	races := 0
	var raceWith []regionAccess
	for _, pa := range rr.accs {
		if pa.id == id {
			continue
		}
		if ds.orderedLocked(pa.id, id) {
			continue
		}
		// Unordered: only conflicting pairs (at least one write) are
		// violations, but unordered read-read pairs block pruning below.
		races++
		if pa.write || write {
			raceWith = append(raceWith, pa)
		}
	}
	if write && races == 0 {
		// This write is ordered after every recorded access, so by
		// transitivity any later access ordered with it is ordered with
		// them too: the region's history collapses to this single write.
		// This keeps shadow lists O(accessors per stage) and the
		// happens-before queries shallow.
		rr.accs = append(rr.accs[:0], regionAccess{id: id, write: true})
	} else {
		rr.accs = append(rr.accs, regionAccess{id: id, write: write})
	}
	// Snapshot the labels before dropping the lock to report.
	type racePair struct{ a, b string }
	var pairs []racePair
	for _, pa := range raceWith {
		other := ds.tasks[pa.id]
		if other == nil {
			continue
		}
		pairs = append(pairs, racePair{a: other.label, b: rec.label})
	}
	ds.mu.Unlock()
	for _, p := range pairs {
		ds.s.report(
			fmt.Sprintf("dep-race|%d|%v|%s|%s", ds.rank, key, p.a, p.b),
			Report{
				Check: KindDepRace,
				Rank:  ds.rank,
				Task:  rec.label,
				Key:   fmt.Sprintf("%v", key),
				Msg: fmt.Sprintf(
					"conflicting access with concurrently-schedulable task %q is not covered by declared dependencies", p.a),
				Stack: captureStack(2),
			})
	}
}

// orderedLocked reports whether task a is ordered before task b: a chain
// of dependence edges and finished-before-spawned links leads from a to
// b. Caller holds ds.mu. The search walks b's graph ancestors; at each
// ancestor x the finished-before-spawned link from a is tested, which
// covers chains mixing both link kinds (an all-edge prefix from a only
// lowers a's finish sequence further below x's birth).
func (ds *DepSanitizer) orderedLocked(a, b uint64) bool {
	ra := ds.tasks[a]
	if ra == nil {
		// Unknown predecessor: it was spawned in a previous epoch, which
		// the quiescent point ordered before everything current.
		return true
	}
	// Breadth-first over b's ancestors: correctly declared conflicts make
	// a a direct (or near-direct) predecessor, so the common query
	// terminates after one layer instead of exploring a whole ancestor
	// cone depth-first.
	visited := map[uint64]bool{b: true}
	queue := []uint64{b}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == a {
			return true
		}
		rx := ds.tasks[x]
		if rx == nil {
			continue
		}
		if ra.finSeq != 0 && ra.finSeq < rx.birthSeq {
			return true
		}
		for _, p := range rx.preds {
			if !visited[p] {
				visited[p] = true
				queue = append(queue, p)
			}
		}
	}
	return false
}

// BindRegion registers that dependency key stands for the storage
// identified by base (typically a pointer to the region's first element).
// Binding one base under two distinct keys within a binding scope is a
// key-aliasing violation: tasks addressing the same data through
// different keys are never ordered by the graph.
func (ds *DepSanitizer) BindRegion(key any, base any) {
	ds.mu.Lock()
	prev, ok := ds.binds[base]
	if !ok {
		ds.binds[base] = regionBind{key: key, site: captureStack(1)}
		ds.mu.Unlock()
		return
	}
	ds.mu.Unlock()
	if prev.key == key {
		return
	}
	ds.s.report(
		fmt.Sprintf("key-alias|%d|%v|%v", ds.rank, prev.key, key),
		Report{
			Check: KindKeyAlias,
			Rank:  ds.rank,
			Key:   fmt.Sprintf("%v", key),
			Msg: fmt.Sprintf(
				"region already bound under distinct key %v; tasks using the two keys are never ordered", prev.key),
			Stack: captureStack(1),
		})
}

// ResetBindings opens a new binding scope. Drivers call it when the
// storage behind their keys may legitimately be recycled (a new exchange
// round drawing fresh arena buffers); aliasing is only meaningful among
// simultaneously-live regions.
func (ds *DepSanitizer) ResetBindings() {
	ds.mu.Lock()
	ds.binds = make(map[any]regionBind)
	ds.mu.Unlock()
}
