// Package cluster describes the virtual machine topology that a simulation
// runs on: a number of nodes, each holding a number of MPI ranks, each rank
// owning a number of cores.
//
// The paper's testbed (MareNostrum4) has 48-core nodes; the MPI-only variant
// runs one rank per core while hybrid variants run a few multi-core ranks
// per node. This package captures exactly that shape so the experiment
// harness can sweep "ranks per node" the way Table I of the paper does,
// and so the simulated interconnect can distinguish intra-node from
// inter-node messages.
package cluster

import "fmt"

// Topology is a virtual cluster layout. It is immutable after creation.
type Topology struct {
	nodes        int
	ranksPerNode int
	coresPerRank int
}

// New builds a topology of nodes*ranksPerNode ranks where each rank owns
// coresPerRank cores. All arguments must be positive.
func New(nodes, ranksPerNode, coresPerRank int) (*Topology, error) {
	if nodes <= 0 || ranksPerNode <= 0 || coresPerRank <= 0 {
		return nil, fmt.Errorf("cluster: invalid topology %dx%dx%d (all dimensions must be positive)",
			nodes, ranksPerNode, coresPerRank)
	}
	return &Topology{nodes: nodes, ranksPerNode: ranksPerNode, coresPerRank: coresPerRank}, nil
}

// MustNew is New but panics on invalid arguments. Intended for tests and
// example programs where the topology is a literal.
func MustNew(nodes, ranksPerNode, coresPerRank int) *Topology {
	t, err := New(nodes, ranksPerNode, coresPerRank)
	if err != nil {
		panic(err)
	}
	return t
}

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return t.nodes }

// RanksPerNode returns the number of MPI ranks placed on each node.
func (t *Topology) RanksPerNode() int { return t.ranksPerNode }

// CoresPerRank returns the number of cores each rank owns (the worker count
// for tasking or fork-join runtimes inside that rank).
func (t *Topology) CoresPerRank() int { return t.coresPerRank }

// Ranks returns the total number of MPI ranks.
func (t *Topology) Ranks() int { return t.nodes * t.ranksPerNode }

// Cores returns the total number of cores across the cluster.
func (t *Topology) Cores() int { return t.Ranks() * t.coresPerRank }

// NodeOf returns the node index hosting the given rank. Ranks are placed
// consecutively: ranks [0, ranksPerNode) on node 0, and so on, matching the
// paper's "consecutive ranks in adjacent cores" placement.
func (t *Topology) NodeOf(rank int) int {
	if rank < 0 || rank >= t.Ranks() {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, t.Ranks()))
	}
	return rank / t.ranksPerNode
}

// SameNode reports whether two ranks are hosted on the same node.
func (t *Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// String implements fmt.Stringer.
func (t *Topology) String() string {
	return fmt.Sprintf("%d nodes x %d ranks/node x %d cores/rank (%d ranks, %d cores)",
		t.nodes, t.ranksPerNode, t.coresPerRank, t.Ranks(), t.Cores())
}
