package cluster

import "testing"

func TestNewValidation(t *testing.T) {
	cases := []struct {
		nodes, rpn, cpr int
		ok              bool
	}{
		{1, 1, 1, true},
		{4, 12, 4, true},
		{0, 1, 1, false},
		{1, 0, 1, false},
		{1, 1, 0, false},
		{-1, 2, 2, false},
	}
	for _, c := range cases {
		_, err := New(c.nodes, c.rpn, c.cpr)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d): err=%v, want ok=%v", c.nodes, c.rpn, c.cpr, err, c.ok)
		}
	}
}

func TestCounts(t *testing.T) {
	topo := MustNew(4, 12, 4)
	if got := topo.Ranks(); got != 48 {
		t.Errorf("Ranks() = %d, want 48", got)
	}
	if got := topo.Cores(); got != 192 {
		t.Errorf("Cores() = %d, want 192", got)
	}
	if got := topo.Nodes(); got != 4 {
		t.Errorf("Nodes() = %d, want 4", got)
	}
	if got := topo.RanksPerNode(); got != 12 {
		t.Errorf("RanksPerNode() = %d, want 12", got)
	}
	if got := topo.CoresPerRank(); got != 4 {
		t.Errorf("CoresPerRank() = %d, want 4", got)
	}
}

func TestNodeOfPlacement(t *testing.T) {
	topo := MustNew(3, 4, 1)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	for rank, node := range want {
		if got := topo.NodeOf(rank); got != node {
			t.Errorf("NodeOf(%d) = %d, want %d", rank, got, node)
		}
	}
}

func TestSameNode(t *testing.T) {
	topo := MustNew(2, 2, 1)
	if !topo.SameNode(0, 1) {
		t.Error("ranks 0,1 should share node 0")
	}
	if topo.SameNode(1, 2) {
		t.Error("ranks 1,2 should be on different nodes")
	}
	if !topo.SameNode(2, 3) {
		t.Error("ranks 2,3 should share node 1")
	}
}

func TestNodeOfPanicsOutOfRange(t *testing.T) {
	topo := MustNew(2, 2, 1)
	for _, rank := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeOf(%d) did not panic", rank)
				}
			}()
			topo.NodeOf(rank)
		}()
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,0,0) did not panic")
		}
	}()
	MustNew(0, 0, 0)
}

func TestString(t *testing.T) {
	topo := MustNew(2, 4, 6)
	s := topo.String()
	if s == "" {
		t.Error("String() returned empty")
	}
}
