package membuf

import (
	"fmt"
	"sync/atomic"
)

// Kind identifies a lease's element type.
type Kind uint8

// The element types the arena leases, matching the buffer types the mpi
// layer transports.
const (
	KindFloat64 Kind = iota
	KindInt
	KindByte

	// kindReleased poisons a handle whose final reference was dropped, so
	// a stale accessor call fails loudly instead of reading a recycled or
	// re-leased buffer.
	kindReleased Kind = 0xFF
)

func (k Kind) String() string {
	switch k {
	case KindFloat64:
		return "[]float64"
	case KindInt:
		return "[]int"
	case KindByte:
		return "[]byte"
	case kindReleased:
		return "released"
	}
	return "unknown"
}

// Lease is a ref-counted handle on one arena buffer, the unit of
// ownership-transfer along the message path. The creator starts with one
// reference; Retain adds sharers; the final Release returns the buffer to
// the arena. After that the lease handle is recycled and must not be
// touched — a further Release panics (double release).
type Lease struct {
	a    *Arena
	kind Kind
	f    []float64
	i    []int
	b    []byte
	refs atomic.Int32
	n    int
}

// LeaseFloat64 leases a []float64 of length n with unspecified contents.
func (a *Arena) LeaseFloat64(n int) *Lease {
	l := a.newLease(KindFloat64, n)
	l.f = a.GetFloat64(n)
	return l
}

// LeaseInt leases a []int of length n with unspecified contents.
func (a *Arena) LeaseInt(n int) *Lease {
	l := a.newLease(KindInt, n)
	l.i = a.GetInt(n)
	return l
}

// LeaseByte leases a []byte of length n with unspecified contents.
func (a *Arena) LeaseByte(n int) *Lease {
	l := a.newLease(KindByte, n)
	l.b = a.GetByte(n)
	return l
}

func (a *Arena) newLease(k Kind, n int) *Lease {
	l := a.leasePool.Get().(*Lease)
	l.a, l.kind, l.n = a, k, n
	l.refs.Store(1)
	a.leasesLive.Add(1)
	if a.mon != nil {
		a.mon.LeaseCreated(l, k, n)
	}
	return l
}

// Kind returns the element type of the leased buffer.
func (l *Lease) Kind() Kind { return l.kind }

// Len returns the element count of the leased buffer.
func (l *Lease) Len() int { return l.n }

// Float64 returns the leased buffer; it panics if the lease holds another
// kind.
func (l *Lease) Float64() []float64 {
	if l.kind != KindFloat64 {
		panic(fmt.Sprintf("membuf: Float64 on a %v lease", l.kind))
	}
	return l.f
}

// Int returns the leased buffer; it panics if the lease holds another kind.
func (l *Lease) Int() []int {
	if l.kind != KindInt {
		panic(fmt.Sprintf("membuf: Int on a %v lease", l.kind))
	}
	return l.i
}

// Byte returns the leased buffer; it panics if the lease holds another
// kind.
func (l *Lease) Byte() []byte {
	if l.kind != KindByte {
		panic(fmt.Sprintf("membuf: Byte on a %v lease", l.kind))
	}
	return l.b
}

// Retain adds a reference, allowing one more Release before the buffer
// returns to the arena. It may only be called by a goroutine that holds a
// live reference.
func (l *Lease) Retain() {
	if l.refs.Add(1) <= 1 {
		panic("membuf: Retain on a released lease")
	}
}

// Release drops one reference; the last one returns the buffer to the
// arena and recycles the handle. Releasing an already-dead lease panics
// (double release).
func (l *Lease) Release() {
	refs := l.refs.Add(-1)
	if refs < 0 {
		panic("membuf: double release of a lease")
	}
	if refs > 0 {
		return
	}
	a := l.a
	if a.mon != nil {
		a.mon.LeaseReleased(l)
	}
	switch l.kind {
	case KindFloat64:
		a.PutFloat64(l.f)
	case KindInt:
		a.PutInt(l.i)
	case KindByte:
		a.PutByte(l.b)
	}
	l.a, l.f, l.i, l.b, l.n = nil, nil, nil, nil, 0
	l.kind = kindReleased // use-after-release now panics in the accessors
	a.leasesLive.Add(-1)
	a.leasePool.Put(l)
}
