// Package membuf is the buffer arena behind the zero-copy message path: a
// size-classed pool of typed scratch buffers ([]float64, []int, []byte)
// with explicit ownership transfer.
//
// The AMR hot path — ghost-face packing, message payloads, per-stage
// checksum slots, whole-block storage across refinement epochs — recycles
// buffers of a few recurring shapes at high frequency. Allocating them
// fresh makes garbage collection, not waiting semantics, dominate the
// simulated runs; production AMR/AMT runtimes all rest on explicit buffer
// ownership and reuse for exactly this reason. The arena provides:
//
//   - Get/Put pairs per element type, size-classed by rounding capacities
//     to powers of two. Get returns a slice of exactly the requested
//     length with unspecified (stale) contents; callers that need zeroed
//     storage clear it themselves.
//   - Lease, a ref-counted handle used for ownership-transfer sends: the
//     producer packs into a lease, hands it to the transport, and the
//     final consumer's Release returns the buffer to the arena. See the
//     "Buffer ownership" section in DESIGN.md for the conventions.
//   - Cache, a small single-owner front that batches Get/Put traffic of
//     one worker goroutine before it reaches the shared arena.
//   - Leak accounting: Stats counts every Get and Put, so tests can assert
//     that a full run returns every buffer it took (Live == 0).
//
// All Arena methods are safe for concurrent use. A Cache is not; it is
// meant to be owned by one worker.
package membuf

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// numClasses bounds the size classes: class c holds buffers of capacity
// 1<<c elements, so the largest pooled buffer has 2^30 elements. Larger
// requests are served by plain allocation and dropped on Put.
const numClasses = 31

// class returns the size class that serves a request of n elements: the
// smallest power-of-two exponent with 1<<c >= n.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// pool is one element type's size-classed free lists.
type pool[T any] struct {
	mu      sync.Mutex
	classes [numClasses][][]T
	// pooled, when non-nil (debug mode), holds the identity of every
	// buffer currently filed, so a double Put panics instead of handing
	// the same backing array to two future Gets.
	pooled map[*T]struct{}
}

//amr:hot allocs=4
func (p *pool[T]) get(a *Arena, n int) []T {
	a.gets.Add(1)
	if n < 0 {
		panic(fmt.Sprintf("membuf: negative buffer length %d", n))
	}
	c := classFor(n)
	if c < numClasses {
		p.mu.Lock()
		if l := len(p.classes[c]); l > 0 {
			b := p.classes[c][l-1]
			p.classes[c][l-1] = nil
			p.classes[c] = p.classes[c][:l-1]
			if p.pooled != nil {
				delete(p.pooled, &b[0:1][0])
			}
			p.mu.Unlock()
			a.hits.Add(1)
			return b[:n]
		}
		p.mu.Unlock()
		a.misses.Add(1)
		return make([]T, n, 1<<c)
	}
	a.misses.Add(1)
	return make([]T, n)
}

//amr:hot allocs=0
func (p *pool[T]) put(a *Arena, b []T) {
	a.puts.Add(1)
	p.putQuiet(b)
}

// putQuiet files a buffer without touching the counters (used when the
// buffer was already accounted as returned, e.g. by a Cache).
func (p *pool[T]) putQuiet(b []T) {
	if cap(b) == 0 {
		return
	}
	// File under the largest class the capacity fully covers, so a later
	// get from that class can always be resliced to its requested length.
	c := bits.Len(uint(cap(b))) - 1
	if c >= numClasses {
		return // outsized: let the GC have it
	}
	b = b[:0]
	p.mu.Lock()
	if p.pooled != nil {
		ptr := &b[0:1][0]
		if _, dup := p.pooled[ptr]; dup {
			p.mu.Unlock()
			panic("membuf: double Put of a buffer")
		}
		p.pooled[ptr] = struct{}{}
	}
	p.classes[c] = append(p.classes[c], b)
	p.mu.Unlock()
}

func (p *pool[T]) setDebug(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !on {
		p.pooled = nil
		return
	}
	p.pooled = make(map[*T]struct{})
	for _, class := range p.classes {
		for _, b := range class {
			p.pooled[&b[0:1][0]] = struct{}{}
		}
	}
}

// Arena is a shared, size-classed buffer pool with leak accounting.
// The zero value is not usable; call New.
type Arena struct {
	f64   pool[float64]
	ints  pool[int]
	bytes pool[byte]

	leasePool sync.Pool

	mon Monitor // optional sanitizer hooks; nil in normal runs

	gets, puts   atomic.Int64
	hits, misses atomic.Int64
	leasesLive   atomic.Int64
}

// Monitor observes lease lifecycle events for the runtime sanitizer: the
// sanitizer records each live lease's creation site so leaks are reported
// with a stack instead of a bare count. Implementations must be safe for
// concurrent use and must not retain l after LeaseReleased returns (the
// handle is recycled).
type Monitor interface {
	// LeaseCreated fires when a lease is handed out.
	LeaseCreated(l *Lease, kind Kind, n int)
	// LeaseReleased fires when a lease's final reference is dropped,
	// before the handle is recycled.
	LeaseReleased(l *Lease)
}

// SetMonitor attaches a lease monitor. It must be called before the arena
// is shared; every hook is nil-guarded so the unmonitored path is free.
func (a *Arena) SetMonitor(m Monitor) { a.mon = m }

// New creates an empty arena.
func New() *Arena {
	a := &Arena{}
	a.leasePool.New = func() any { return new(Lease) }
	return a
}

// SetDebug toggles double-Put detection: while on, returning the same
// buffer twice panics at the second Put instead of corrupting the free
// lists. Detection costs one map operation per Get/Put, so it is meant for
// tests and debugging runs, not the hot path.
func (a *Arena) SetDebug(on bool) {
	a.f64.setDebug(on)
	a.ints.setDebug(on)
	a.bytes.setDebug(on)
}

// GetFloat64 returns a []float64 of length n with unspecified contents.
func (a *Arena) GetFloat64(n int) []float64 { return a.f64.get(a, n) }

// PutFloat64 returns a buffer to the arena. The caller must not use the
// slice (or any alias of it) afterwards.
func (a *Arena) PutFloat64(b []float64) { a.f64.put(a, b) }

// GetInt returns a []int of length n with unspecified contents.
func (a *Arena) GetInt(n int) []int { return a.ints.get(a, n) }

// PutInt returns a buffer to the arena.
func (a *Arena) PutInt(b []int) { a.ints.put(a, b) }

// GetByte returns a []byte of length n with unspecified contents.
func (a *Arena) GetByte(n int) []byte { return a.bytes.get(a, n) }

// PutByte returns a buffer to the arena.
func (a *Arena) PutByte(b []byte) { a.bytes.put(a, b) }

// Stats is a snapshot of the arena's counters.
type Stats struct {
	// Gets and Puts count buffer acquisitions and returns. Puts may exceed
	// Gets when foreign buffers (not drawn from this arena) are donated.
	Gets, Puts int64
	// Hits and Misses split Gets by whether the free lists served them.
	Hits, Misses int64
	// Live is Gets - Puts: buffers currently checked out. A leak-free
	// workload ends with Live == 0.
	Live int64
	// LeasesLive counts leases created but not yet fully released.
	LeasesLive int64
}

// HitRate is the fraction of Gets served without allocating.
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() Stats {
	g, p := a.gets.Load(), a.puts.Load()
	return Stats{
		Gets: g, Puts: p,
		Hits: a.hits.Load(), Misses: a.misses.Load(),
		Live:       g - p,
		LeasesLive: a.leasesLive.Load(),
	}
}
