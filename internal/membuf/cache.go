package membuf

import "math/bits"

// cacheSlots bounds how many buffers a cache retains per size class before
// overflowing to the shared arena.
const cacheSlots = 8

// Cache is a single-owner front for an arena: a worker goroutine's private
// stash of []float64 buffers (the hot element type of the AMR kernels)
// that batches pool traffic before it reaches the shared free lists.
// Gets and Puts through a cache count against the arena's leak accounting
// exactly like direct arena traffic, so Stats.Live stays meaningful.
//
// A Cache is NOT safe for concurrent use — create one per worker. Buffers
// obtained from a cache may be returned to any cache of the same arena or
// to the arena directly, and vice versa.
type Cache struct {
	a       *Arena
	classes [numClasses][]([]float64)
}

// NewCache creates an empty cache over the arena.
func NewCache(a *Arena) *Cache { return &Cache{a: a} }

// GetFloat64 returns a []float64 of length n with unspecified contents,
// preferring the cache's private stash.
func (c *Cache) GetFloat64(n int) []float64 {
	cl := classFor(n)
	if cl < numClasses {
		if l := len(c.classes[cl]); l > 0 {
			b := c.classes[cl][l-1]
			c.classes[cl][l-1] = nil
			c.classes[cl] = c.classes[cl][:l-1]
			c.a.gets.Add(1)
			c.a.hits.Add(1)
			return b[:n]
		}
	}
	return c.a.GetFloat64(n)
}

// PutFloat64 stashes a buffer in the cache, overflowing to the arena when
// the class is full.
func (c *Cache) PutFloat64(b []float64) {
	if cap(b) > 0 {
		if cl := bits.Len(uint(cap(b))) - 1; cl < numClasses && len(c.classes[cl]) < cacheSlots {
			c.classes[cl] = append(c.classes[cl], b[:0])
			c.a.puts.Add(1)
			return
		}
	}
	c.a.PutFloat64(b)
}

// Flush moves every stashed buffer to the arena's shared free lists. The
// buffers were already accounted as returned when they entered the cache,
// so Flush does not change the counters.
func (c *Cache) Flush() {
	for cl := range c.classes {
		for _, b := range c.classes[cl] {
			c.a.f64.putQuiet(b)
		}
		c.classes[cl] = nil
	}
}
