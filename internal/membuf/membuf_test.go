package membuf

import (
	"sync"
	"testing"
)

// sameBacking reports whether two slices share a backing array (compared
// at full capacity, since pooled buffers travel resliced).
func sameBacking(a, b []float64) bool {
	if cap(a) == 0 || cap(b) == 0 {
		return false
	}
	return &a[:cap(a)][cap(a)-1] == &b[:cap(b)][cap(b)-1]
}

func TestGetPutReuse(t *testing.T) {
	a := New()
	b1 := a.GetFloat64(100)
	if len(b1) != 100 {
		t.Fatalf("GetFloat64(100) returned len %d", len(b1))
	}
	if cap(b1) != 128 {
		t.Fatalf("size class of 100 should cap at 128, got %d", cap(b1))
	}
	a.PutFloat64(b1)
	b2 := a.GetFloat64(90) // same class; must reuse the same backing array
	if !sameBacking(b1, b2) {
		t.Fatal("same-class Get after Put did not reuse the buffer")
	}
	if len(b2) != 90 {
		t.Fatalf("reused buffer has len %d, want 90", len(b2))
	}
	st := a.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 2 gets, 1 put, 1 hit, 1 miss", st)
	}
	if st.Live != 1 {
		t.Fatalf("Live = %d, want 1", st.Live)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", st.HitRate())
	}
}

func TestZeroAndOutsizedLengths(t *testing.T) {
	a := New()
	z := a.GetFloat64(0)
	if len(z) != 0 {
		t.Fatalf("GetFloat64(0) has len %d", len(z))
	}
	a.PutFloat64(z)
	// Outsized requests fall through to plain allocation and are dropped
	// on Put without panicking.
	huge := a.GetInt(1 << 4)
	a.PutInt(huge)
	if live := a.Stats().Live; live != 0 {
		t.Fatalf("Live = %d after matched put", live)
	}
}

// TestCrossKindIsolation pins the corruption guarantee: the three element
// types draw from disjoint pools, so traffic of one kind can never hand
// out (or scribble over) another kind's backing memory.
func TestCrossKindIsolation(t *testing.T) {
	a := New()
	f := a.GetFloat64(64)
	for i := range f {
		f[i] = 3.25
	}
	a.PutFloat64(f)

	// Churn the byte and int pools with same-class sizes, writing garbage.
	by := a.GetByte(64 * 8)
	for i := range by {
		by[i] = 0xff
	}
	a.PutByte(by)
	iv := a.GetInt(64)
	for i := range iv {
		iv[i] = -1
	}
	a.PutInt(iv)

	// The float64 pool must return the original buffer, contents intact up
	// to its capacity (Get does not zero).
	f2 := a.GetFloat64(64)
	if !sameBacking(f, f2) {
		t.Fatal("float64 pool did not retain its buffer across other-kind churn")
	}
	for i, v := range f2 {
		if v != 3.25 {
			t.Fatalf("float64 buffer corrupted at %d: %v", i, v)
		}
	}
}

func TestLeaseLifecycle(t *testing.T) {
	a := New()
	l := a.LeaseFloat64(32)
	if l.Kind() != KindFloat64 || l.Len() != 32 || len(l.Float64()) != 32 {
		t.Fatalf("lease shape wrong: kind=%v len=%d", l.Kind(), l.Len())
	}
	if got := a.Stats().LeasesLive; got != 1 {
		t.Fatalf("LeasesLive = %d, want 1", got)
	}
	l.Retain()
	l.Release()
	if got := a.Stats().LeasesLive; got != 1 {
		t.Fatalf("LeasesLive after retained release = %d, want 1", got)
	}
	buf := l.Float64()
	l.Release()
	st := a.Stats()
	if st.LeasesLive != 0 || st.Live != 0 {
		t.Fatalf("after final release: %+v, want no live leases or buffers", st)
	}
	// The buffer is back in the pool: a new lease of the class reuses it.
	l2 := a.LeaseFloat64(20)
	if !sameBacking(buf, l2.Float64()) {
		t.Fatal("released lease buffer was not pooled")
	}
	l2.Release()
}

func TestLeaseDoubleReleasePanics(t *testing.T) {
	a := New()
	l := a.LeaseInt(4)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	l.Release()
}

func TestLeaseKindMismatchPanics(t *testing.T) {
	a := New()
	l := a.LeaseByte(4)
	defer l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Float64 on a byte lease did not panic")
		}
	}()
	l.Float64()
}

func TestCache(t *testing.T) {
	a := New()
	c := NewCache(a)
	b := c.GetFloat64(48) // miss: falls through to the arena
	c.PutFloat64(b)       // stashed privately
	if st := a.Stats(); st.Live != 0 {
		t.Fatalf("Live = %d after cache put, want 0", st.Live)
	}
	b2 := c.GetFloat64(40)
	if !sameBacking(b, b2) {
		t.Fatal("cache did not serve from its stash")
	}
	c.PutFloat64(b2)
	c.Flush()
	// After a flush the buffer is in the shared free lists.
	b3 := a.GetFloat64(33)
	if !sameBacking(b, b3) {
		t.Fatal("Flush did not hand the buffer to the arena")
	}
	a.PutFloat64(b3)
	if st := a.Stats(); st.Live != 0 {
		t.Fatalf("final Live = %d, want 0 (stats %+v)", st.Live, st)
	}
}

func TestCacheOverflowsToArena(t *testing.T) {
	a := New()
	c := NewCache(a)
	bufs := make([][]float64, cacheSlots+3)
	for i := range bufs {
		bufs[i] = a.GetFloat64(16)
	}
	for _, b := range bufs {
		c.PutFloat64(b)
	}
	if st := a.Stats(); st.Live != 0 {
		t.Fatalf("Live = %d after puts, want 0", st.Live)
	}
	// Overflowed buffers must be retrievable straight from the arena.
	seen := 0
	for i := 0; i < 3; i++ {
		g := a.GetFloat64(16)
		for _, b := range bufs {
			if sameBacking(g, b) {
				seen++
				break
			}
		}
	}
	if seen != 3 {
		t.Fatalf("only %d of 3 overflow buffers reached the arena", seen)
	}
}

// TestConcurrentTraffic hammers the arena from many goroutines so the race
// detector can vet the locking, and checks the leak counter balances.
func TestConcurrentTraffic(t *testing.T) {
	a := New()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	handoff := make(chan *Lease, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := (seed*31+i)%1000 + 1
				b := a.GetFloat64(n)
				b[0], b[n-1] = 1, 2
				a.PutFloat64(b)
				iv := a.GetInt(n / 2)
				a.PutInt(iv)
				l := a.LeaseByte(n)
				handoff <- l // ownership transfer to whichever worker drains it
				(<-handoff).Release()
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Live != 0 || st.LeasesLive != 0 {
		t.Fatalf("leaked: %+v", st)
	}
	if st.Gets != st.Puts {
		t.Fatalf("gets %d != puts %d", st.Gets, st.Puts)
	}
}

func TestLeaseUseAfterReleasePanics(t *testing.T) {
	a := New()
	l := a.LeaseFloat64(8)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("accessor on a released lease did not panic")
		}
	}()
	l.Float64() // the handle is poisoned: the buffer may already be re-leased
}

func TestLeaseReuseResetsPoisonedKind(t *testing.T) {
	a := New()
	l := a.LeaseInt(4)
	l.Release()
	l2 := a.LeaseInt(4) // recycles the poisoned handle
	if l2.Kind() != KindInt {
		t.Fatalf("recycled lease kind = %v, want %v", l2.Kind(), KindInt)
	}
	if got := l2.Int(); len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	l2.Release()
}

func TestDoublePutPanicsInDebugMode(t *testing.T) {
	a := New()
	a.SetDebug(true)
	b := a.GetFloat64(16)
	a.PutFloat64(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic in debug mode")
		}
	}()
	a.PutFloat64(b)
}

func TestDebugModeAllowsLegitimateReuse(t *testing.T) {
	a := New()
	a.SetDebug(true)
	b := a.GetInt(8)
	a.PutInt(b)
	b2 := a.GetInt(8) // same backing array, checked out again
	if &b[0] != &b2[0] {
		t.Fatal("expected the pooled buffer back")
	}
	a.PutInt(b2) // a Get between the Puts makes this legal
	a.SetDebug(false)
	st := a.Stats()
	if st.Live != 0 {
		t.Fatalf("Live = %d, want 0", st.Live)
	}
}

func TestSetDebugOnPopulatedArena(t *testing.T) {
	a := New()
	b := a.GetByte(32)
	a.PutByte(b) // filed before debug mode turns on
	a.SetDebug(true)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put of a pre-debug buffer did not panic")
		}
	}()
	a.PutByte(b)
}
