package tampi

import (
	"sync/atomic"
	"testing"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
	"miniamr/internal/task"
)

func newWorld(ranks int, net simnet.Model) *mpi.World {
	return mpi.NewWorld(cluster.MustNew(1, ranks, 1), net)
}

func TestIrecvBindingDelaysSuccessor(t *testing.T) {
	// The canonical TAMPI pattern from the paper's Algorithm 3: a receive
	// task binds the request; the consumer (unpack) task depends on the
	// buffer and must only run after the data actually arrived.
	net := simnet.Model{InterNodeLatency: 5 * time.Millisecond}
	w := mpi.NewWorld(cluster.MustNew(2, 1, 1), net)
	err := w.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			time.Sleep(2 * time.Millisecond)
			if err := c.Send([]float64{3.25}, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			rt := task.MustNewRuntime(task.Options{Workers: 2})
			defer rt.Shutdown()
			x := New(c)
			buf := make([]float64, 1)
			var consumed float64
			rt.Spawn("recv", func(tk *task.Task) {
				if err := x.Irecv(tk, buf, 0, 0); err != nil {
					t.Errorf("irecv: %v", err)
				}
				// Task body returns immediately; data must NOT be consumed here.
			}, task.Out("buf")...)
			rt.Spawn("unpack", func(*task.Task) {
				consumed = buf[0]
			}, task.In("buf")...)
			rt.Wait()
			if consumed != 3.25 {
				t.Errorf("consumer saw %v, want 3.25 (ran before message arrival?)", consumed)
			}
			if err := x.Err(); err != nil {
				t.Errorf("async error: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendCompletesTaskAfterWire(t *testing.T) {
	net := simnet.Model{InterNodeLatency: 5 * time.Millisecond}
	w := mpi.NewWorld(cluster.MustNew(2, 1, 1), net)
	err := w.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			rt := task.MustNewRuntime(task.Options{Workers: 1})
			defer rt.Shutdown()
			x := New(c)
			var sendDone, succStarted time.Time
			rt.Spawn("send", func(tk *task.Task) {
				if err := x.Isend(tk, []float64{1}, 1, 0); err != nil {
					t.Errorf("isend: %v", err)
				}
				sendDone = time.Now()
			}, task.In("payload")...)
			rt.Spawn("reuse", func(*task.Task) {
				succStarted = time.Now()
			}, task.Out("payload")...)
			rt.Wait()
			if gap := succStarted.Sub(sendDone); gap < 3*time.Millisecond {
				t.Errorf("successor started %v after send body; binding should delay it ~5ms", gap)
			}
		case 1:
			buf := make([]float64, 1)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIwaitMultipleRequests(t *testing.T) {
	w := newWorld(2, simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			time.Sleep(time.Millisecond)
			for tag := 0; tag < 3; tag++ {
				if err := c.Send([]int{tag * 10}, 1, tag); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		case 1:
			rt := task.MustNewRuntime(task.Options{Workers: 2})
			defer rt.Shutdown()
			x := New(c)
			bufs := make([][]int, 3)
			var sum int64
			rt.Spawn("recv-all", func(tk *task.Task) {
				var reqs []*mpi.Request
				for tag := 0; tag < 3; tag++ {
					bufs[tag] = make([]int, 1)
					req, err := c.Irecv(bufs[tag], 0, tag)
					if err != nil {
						t.Errorf("irecv: %v", err)
						return
					}
					reqs = append(reqs, req)
				}
				x.Iwait(tk, reqs...)
			}, task.Out("bufs")...)
			rt.Spawn("sum", func(*task.Task) {
				for _, b := range bufs {
					atomic.AddInt64(&sum, int64(b[0]))
				}
			}, task.In("bufs")...)
			rt.Wait()
			if sum != 30 {
				t.Errorf("sum = %d, want 30", sum)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIwaitNilAndEmpty(t *testing.T) {
	w := newWorld(1, simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		rt := task.MustNewRuntime(task.Options{Workers: 1})
		defer rt.Shutdown()
		x := New(c)
		rt.Spawn("noop", func(tk *task.Task) {
			x.Iwait(tk)           // no requests
			x.Iwait(tk, nil, nil) // nil requests
		})
		rt.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockingRecvSuspendsNotBlocks(t *testing.T) {
	// One virtual core: while a task blocks in Recv, another task must be
	// able to run — and in fact must be the one that triggers the send.
	w := newWorld(2, simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			buf := make([]int, 1)
			if _, err := c.Recv(buf, 1, 0); err != nil { // wait for the nudge
				t.Errorf("recv nudge: %v", err)
			}
			if err := c.Send([]int{buf[0] * 2}, 1, 1); err != nil {
				t.Errorf("send reply: %v", err)
			}
		case 1:
			rt := task.MustNewRuntime(task.Options{Workers: 1})
			defer rt.Shutdown()
			x := New(c)
			var got int
			rt.Spawn("blocking-recv", func(tk *task.Task) {
				buf := make([]int, 1)
				st, err := x.Recv(tk, buf, 0, 1)
				if err != nil {
					t.Errorf("tampi recv: %v", err)
					return
				}
				if st.Count != 1 {
					t.Errorf("count = %d", st.Count)
				}
				got = buf[0]
			})
			rt.Spawn("nudge", func(tk *task.Task) {
				// This task can only run if blocking-recv released the core.
				if err := x.Send(tk, []int{21}, 0, 0); err != nil {
					t.Errorf("tampi send: %v", err)
				}
			})
			rt.Wait()
			if got != 42 {
				t.Errorf("got %d, want 42", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncErrorRecorded(t *testing.T) {
	w := newWorld(2, simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			time.Sleep(time.Millisecond)
			if err := c.Send([]int{1, 2, 3}, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			rt := task.MustNewRuntime(task.Options{Workers: 1})
			defer rt.Shutdown()
			x := New(c)
			rt.Spawn("short-recv", func(tk *task.Task) {
				// Buffer too small: the bound request completes with a
				// truncation error after the body returns.
				if err := x.Irecv(tk, make([]int, 1), 0, 0); err != nil {
					t.Errorf("irecv: %v", err)
				}
			})
			rt.Wait()
			if x.Err() == nil {
				t.Error("truncation error was not recorded in the context")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImmediateArgumentErrors(t *testing.T) {
	w := newWorld(1, simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		rt := task.MustNewRuntime(task.Options{Workers: 1})
		defer rt.Shutdown()
		x := New(c)
		rt.Spawn("bad", func(tk *task.Task) {
			if err := x.Isend(tk, []int{1}, 99, 0); err == nil {
				t.Error("Isend to invalid rank: want error")
			}
			if err := x.Irecv(tk, "bad", 0, 0); err == nil {
				t.Error("Irecv with bad buffer: want error")
			}
			if err := x.Send(tk, []int{1}, -1, 0); err == nil {
				t.Error("Send to invalid rank: want error")
			}
			if _, err := x.Recv(tk, []int{1}, 42, 0); err == nil {
				t.Error("Recv from invalid rank: want error")
			}
		})
		rt.Wait()
		if x.Comm() != c {
			t.Error("Comm() mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlockingBurst drives many concurrent blocking operations through the
// suspension path: all tasks pause, all cores stay available, everything
// completes.
func TestBlockingBurst(t *testing.T) {
	w := newWorld(2, simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		const msgs = 40
		rt := task.MustNewRuntime(task.Options{Workers: 2})
		defer rt.Shutdown()
		x := New(c)
		peer := 1 - c.Rank()
		var sum int64
		for i := 0; i < msgs; i++ {
			i := i
			rt.Spawn("send", func(tk *task.Task) {
				if err := x.Send(tk, []int{i}, peer, i); err != nil {
					t.Errorf("send: %v", err)
				}
			})
			rt.Spawn("recv", func(tk *task.Task) {
				buf := make([]int, 1)
				if _, err := x.Recv(tk, buf, peer, i); err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				atomic.AddInt64(&sum, int64(buf[0]))
			})
		}
		rt.Wait()
		if sum != msgs*(msgs-1)/2 {
			t.Errorf("sum = %d, want %d", sum, msgs*(msgs-1)/2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
