package tampi

import (
	"fmt"
	"testing"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
	"miniamr/internal/task"
)

// TestChaosCommunicationTasksComplete runs the canonical TAMPI pattern —
// receive tasks binding requests, consumer tasks depending on the
// buffers — over a deliberately lossy transport. Every suspended task
// must still resume exactly once with the right data: the retransmit
// layer below TAMPI hides drops, duplicates and spikes entirely.
func TestChaosCommunicationTasksComplete(t *testing.T) {
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	lossy := simnet.LinkFaults{Drop: 0.3, Duplicate: 0.2, Spike: 0.3, SpikeMax: 200 * time.Microsecond}
	inj := simnet.NewInjector(simnet.Faults{Seed: 5, Intra: lossy, Inter: lossy})
	w.EnableChaos(inj, mpi.Resilience{RetryTimeout: 500 * time.Microsecond, MaxRetries: 30})

	const msgs = 40
	err := w.Run(func(c *mpi.Comm) {
		rt := task.MustNewRuntime(task.Options{Workers: 2})
		defer rt.Shutdown()
		x := New(c)
		peer := 1 - c.Rank()
		bufs := make([][]int, msgs)
		got := make([]int, msgs)
		for i := 0; i < msgs; i++ {
			i := i
			rt.Spawn("send", func(tk *task.Task) {
				if err := x.Isend(tk, []int{i * 7}, peer, i); err != nil {
					t.Errorf("isend %d: %v", i, err)
				}
			})
			bufs[i] = make([]int, 1)
			key := fmt.Sprintf("buf%d", i)
			rt.Spawn("recv", func(tk *task.Task) {
				if err := x.Irecv(tk, bufs[i], peer, i); err != nil {
					t.Errorf("irecv %d: %v", i, err)
				}
			}, task.Out(key)...)
			rt.Spawn("unpack", func(*task.Task) {
				got[i] = bufs[i][0]
			}, task.In(key)...)
		}
		rt.Wait()
		if err := x.Err(); err != nil {
			t.Errorf("rank %d async error: %v", c.Rank(), err)
		}
		for i, v := range got {
			if v != i*7 {
				t.Errorf("rank %d message %d: got %d, want %d", c.Rank(), i, v, i*7)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Drops == 0 {
		t.Error("no drops injected; the scenario exercised nothing")
	}
	if st := w.ChaosStats(); st.Recovered == 0 {
		t.Errorf("no dropped message was recovered: %+v", st)
	}
}
