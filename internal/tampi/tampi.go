// Package tampi reproduces the Task-Aware MPI library: it integrates MPI
// operations with the data-flow tasking runtime so communications can be
// issued safely and efficiently from inside tasks.
//
// Two families of operations are provided, mirroring the TAMPI API the
// paper builds on:
//
//   - Blocking operations (Send, Recv) pause the calling task until the
//     operation completes. The task's virtual core is released in the
//     meantime, so the runtime keeps executing other ready tasks — the
//     task is suspended, not the worker.
//   - Non-blocking binding (Isend, Irecv, Iwait) starts a standard
//     non-blocking operation and binds its completion to the calling
//     task: the task's dependencies are released only once the task body
//     has returned and every bound request has completed. Successor tasks
//     therefore observe fully transferred buffers without anybody
//     spinning on MPI_Test.
//
// Iwait corresponds to TAMPI_Iwait/TAMPI_Iwaitall; Isend and Irecv are the
// convenience wrappers TAMPI_Isend/TAMPI_Irecv that perform the operation
// and immediately bind the resulting request.
//
// Errors on bound requests complete asynchronously, possibly after the
// issuing task body has returned; they are recorded in the Context and
// surfaced by Err, which drivers check at phase boundaries.
package tampi

import (
	"sync"

	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/task"
)

// Context couples one rank's communicator with asynchronous error
// tracking. All methods are safe for concurrent use by tasks of the rank.
type Context struct {
	comm *mpi.Comm

	mu  sync.Mutex
	err error
}

// New builds a task-aware context over a communicator.
func New(c *mpi.Comm) *Context { return &Context{comm: c} }

// suspend parks t until req completes, reporting the pause to an attached
// transport monitor as a soft block: the rank's other tasks keep running,
// so the pause is diagnostic context for deadlock reports, never a
// deadlock-detection input. With no monitor attached this is exactly
// t.Suspend(req.Done()).
func (x *Context) suspend(t *task.Task, req *mpi.Request, op string, peer, tag int) {
	mon := x.comm.World().Monitor()
	if mon == nil {
		t.Suspend(req.Done())
		return
	}
	token := mon.BlockEnter(mpi.BlockInfo{
		Rank: x.comm.Rank(), Peer: peer, Tag: tag, Op: op, Soft: true,
	}, nil)
	t.Suspend(req.Done())
	mon.BlockExit(token)
}

// Comm returns the underlying communicator.
func (x *Context) Comm() *mpi.Comm { return x.comm }

// Err returns the first asynchronous error observed on a bound request, or
// nil. Drivers call it at synchronisation points.
func (x *Context) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

func (x *Context) record(err error) {
	if err == nil {
		return
	}
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
}

// Iwait binds the completion of the given requests to t: t will not
// release its dependencies until all of them complete. It never blocks.
// Corresponds to TAMPI_Iwait/TAMPI_Iwaitall.
//
//amr:hot allocs=2
func (x *Context) Iwait(t *task.Task, reqs ...*mpi.Request) {
	live := 0
	for _, r := range reqs {
		if r != nil {
			live++
		}
	}
	if live == 0 {
		return
	}
	t.AddEvents(live)
	for _, r := range reqs {
		if r == nil {
			continue
		}
		r := r
		r.OnComplete(func() {
			_, err := r.Wait() // already complete; fetch outcome
			x.record(err)
			t.CompleteEvent()
		})
	}
}

// Isend starts a non-blocking send and binds it to t (TAMPI_Isend). The
// send buffer is copied eagerly by the MPI layer, so the caller may reuse
// it; the binding still delays dependency release until the message is on
// the wire, preserving TAMPI's completion semantics.
//
//amr:hot allocs=0
func (x *Context) Isend(t *task.Task, buf any, dest, tag int) error {
	req, err := x.comm.Isend(buf, dest, tag)
	if err != nil {
		return err
	}
	x.Iwait(t, req)
	return nil
}

// IsendOwned starts a non-blocking ownership-transfer send and binds it to
// t: the lease passes to the MPI layer without a copy, and the receiving
// side returns the buffer to the arena. The caller must not touch the
// lease after a successful call; on error it retains ownership.
//
//amr:hot allocs=0
func (x *Context) IsendOwned(t *task.Task, pay *membuf.Lease, dest, tag int) error {
	req, err := x.comm.IsendOwned(pay, dest, tag)
	if err != nil {
		return err
	}
	x.Iwait(t, req)
	return nil
}

// SendOwned performs a blocking ownership-transfer send from inside a
// task: the task pauses until the message has been delivered, releasing
// its core meanwhile. Lease ownership follows IsendOwned's rules.
//
//amr:hot allocs=0
func (x *Context) SendOwned(t *task.Task, pay *membuf.Lease, dest, tag int) error {
	req, err := x.comm.IsendOwned(pay, dest, tag)
	if err != nil {
		return err
	}
	x.suspend(t, req, "tampi.SendOwned", dest, tag)
	_, err = req.Wait()
	return err
}

// Irecv starts a non-blocking receive into buf and binds it to t
// (TAMPI_Irecv). The buffer must not be consumed inside the task: it is
// valid only for successor tasks that depend on the task's out-access.
//
//amr:hot allocs=0
func (x *Context) Irecv(t *task.Task, buf any, source, tag int) error {
	req, err := x.comm.Irecv(buf, source, tag)
	if err != nil {
		return err
	}
	x.Iwait(t, req)
	return nil
}

// Send performs a blocking send from inside a task: the task pauses until
// the message has been delivered, releasing its core meanwhile.
//
//amr:hot allocs=0
func (x *Context) Send(t *task.Task, buf any, dest, tag int) error {
	req, err := x.comm.Isend(buf, dest, tag)
	if err != nil {
		return err
	}
	x.suspend(t, req, "tampi.Send", dest, tag)
	_, err = req.Wait()
	return err
}

// Recv performs a blocking receive from inside a task: the task pauses
// until a matching message has been copied into buf, releasing its core
// meanwhile.
//
//amr:hot allocs=0
func (x *Context) Recv(t *task.Task, buf any, source, tag int) (mpi.Status, error) {
	req, err := x.comm.Irecv(buf, source, tag)
	if err != nil {
		return mpi.Status{}, err
	}
	x.suspend(t, req, "tampi.Recv", source, tag)
	return req.Wait()
}
