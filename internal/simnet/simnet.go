// Package simnet models the cost of moving bytes across the virtual
// cluster's interconnect.
//
// The reproduction runs every MPI rank inside one OS process, so message
// transport is a memory copy. To recover the phenomena the paper measures
// — communication/computation overlap, sensitivity to the number of
// neighbours, serialized-master bottlenecks — inter-rank messages are
// charged a transfer time (latency + size/bandwidth) before they become
// visible to the receiver. Intra-node messages are cheaper than inter-node
// ones, mirroring shared-memory versus fabric transfers.
//
// Delays are realised by parking the delivery goroutine, so a rank that
// waits on a message genuinely idles while a data-flow runtime can run
// other tasks in the meantime: exactly the effect TAMPI exploits.
package simnet

import "time"

// Model describes interconnect costs. The zero value charges nothing and is
// the right choice for unit tests where timing is irrelevant.
type Model struct {
	// IntraNodeLatency is the fixed cost of a message between ranks on the
	// same node (a shared-memory copy).
	IntraNodeLatency time.Duration
	// InterNodeLatency is the fixed cost of a message between ranks on
	// different nodes (a fabric round through the NIC).
	InterNodeLatency time.Duration
	// IntraNodeBandwidth and InterNodeBandwidth are in bytes per second.
	// Zero means infinite (no per-byte cost).
	IntraNodeBandwidth float64
	InterNodeBandwidth float64
}

// None returns a model with no cost. Messages are delivered immediately.
func None() Model { return Model{} }

// Default returns the model used by the experiment harness. The constants
// are scaled for the reproduction's small virtual clusters: inter-node
// latency sits well above the Go timer granularity so sleeps are faithful,
// and bandwidth terms make large face bundles measurably more expensive
// than small control messages.
func Default() Model {
	return Model{
		IntraNodeLatency:   2 * time.Microsecond,
		InterNodeLatency:   120 * time.Microsecond,
		IntraNodeBandwidth: 8e9, // 8 GB/s shared memory copy
		InterNodeBandwidth: 1e9, // 1 GB/s fabric
	}
}

// Slow returns a high-latency model (a congested or far-flung fabric).
// With it, communication waits dominate and the variants separate the way
// the paper's large-scale runs do: serialised waiting leaves cores idle
// unless a data-flow runtime fills them with ready tasks. On hosts with
// few physical cores this is the model that makes overlap visible.
func Slow() Model {
	return Model{
		IntraNodeLatency:   5 * time.Microsecond,
		InterNodeLatency:   1500 * time.Microsecond,
		IntraNodeBandwidth: 8e9,
		InterNodeBandwidth: 4e8, // 400 MB/s
	}
}

// Delay returns the simulated transfer time for a message of the given size
// between two ranks that either share a node or not.
func (m Model) Delay(sameNode bool, bytes int) time.Duration {
	var lat time.Duration
	var bw float64
	if sameNode {
		lat, bw = m.IntraNodeLatency, m.IntraNodeBandwidth
	} else {
		lat, bw = m.InterNodeLatency, m.InterNodeBandwidth
	}
	d := lat
	if bw > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / bw * float64(time.Second))
	}
	return d
}

// minSleep is the smallest delay worth realising with a timer; the Go
// runtime cannot park/unpark meaningfully faster than this, and sleeping
// for such periods would only add noise.
const minSleep = 10 * time.Microsecond

// Apply blocks the calling goroutine for the simulated transfer time of a
// message. Delays too small to realise faithfully are skipped.
func (m Model) Apply(sameNode bool, bytes int) {
	if d := m.Delay(sameNode, bytes); d >= minSleep {
		time.Sleep(d)
	}
}

// EffectiveDelay returns the transfer time that will actually be realised:
// zero when the nominal delay is below the timer granularity, in which
// case the caller should deliver synchronously instead of parking a
// goroutine.
func (m Model) EffectiveDelay(sameNode bool, bytes int) time.Duration {
	if d := m.Delay(sameNode, bytes); d >= minSleep {
		return d
	}
	return 0
}

// IsZero reports whether the model charges nothing at all.
func (m Model) IsZero() bool {
	return m.IntraNodeLatency == 0 && m.InterNodeLatency == 0 &&
		m.IntraNodeBandwidth == 0 && m.InterNodeBandwidth == 0
}
