package simnet

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the deterministic fault-injection engine. The latency model
// in simnet.go describes a *well-behaved* interconnect; Faults describes a
// misbehaving one: messages dropped, duplicated or delayed by spikes, links
// partitioned for bursts (or cut permanently), and ranks stalled as if
// preempted by the OS. The MPI layer consults an Injector on every
// primary transmission and realises the decisions it returns; its
// retransmit/ack protocol (internal/mpi/reliable.go) then recovers the
// lost traffic, so applications complete with bit-identical results.
//
// Determinism contract: every decision is a pure function of
// (Seed, link class, src, dst, seq) — or (Seed, rank, n) for stalls — via
// a PCG stream keyed by those values. The injected-event schedule
// therefore depends only on the seed and on how many primary messages the
// application sends on each pair (retransmissions are never faulted by
// the seeded schedule and never consume draws), so a given seed yields a
// byte-identical event log on every run, regardless of goroutine
// interleaving. Permanent Cut links are static configuration, applied to
// every transmission attempt but excluded from the seeded log.

// FaultKind labels one kind of injected fault.
type FaultKind uint8

// The fault kinds the injector produces.
const (
	// FaultDrop: a primary transmission is discarded in flight.
	FaultDrop FaultKind = iota
	// FaultDuplicate: a primary transmission is delivered twice.
	FaultDuplicate
	// FaultSpike: a primary transmission is delayed by an extra latency
	// spike on top of the model's transfer time.
	FaultSpike
	// FaultPartition: a primary transmission is discarded because its
	// link is inside a temporary partition burst.
	FaultPartition
	// FaultStall: a rank is paused before one of its sends, as if the OS
	// preempted it.
	FaultStall

	numFaultKinds
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultSpike:
		return "spike"
	case FaultPartition:
		return "partition"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// FaultEvent is one injected fault, the unit of the reproducible schedule.
type FaultEvent struct {
	Kind FaultKind
	// Src and Dst are the link's ranks; Dst is -1 for rank-level events
	// (stalls).
	Src, Dst int
	// Seq is the per-pair primary-message sequence number the fault hit,
	// or the rank's send index for stalls.
	Seq int
	// Delay is the injected extra latency (spikes and stalls).
	Delay time.Duration
}

// String renders the event in the fixed format the seeded chaos suite
// compares byte-for-byte.
func (e FaultEvent) String() string {
	if e.Dst < 0 {
		return fmt.Sprintf("%s rank=%d n=%d delay=%s", e.Kind, e.Src, e.Seq, e.Delay)
	}
	if e.Delay > 0 {
		return fmt.Sprintf("%s %d->%d seq=%d delay=%s", e.Kind, e.Src, e.Dst, e.Seq, e.Delay)
	}
	return fmt.Sprintf("%s %d->%d seq=%d", e.Kind, e.Src, e.Dst, e.Seq)
}

// LinkFaults configures the per-message fault rates of one link class
// (intra-node or inter-node). Rates are probabilities in [0,1]; drop,
// duplicate and spike are mutually exclusive per message (drop wins over
// duplicate over spike).
type LinkFaults struct {
	// Drop is the probability a primary transmission is discarded.
	Drop float64
	// Duplicate is the probability a primary transmission arrives twice.
	Duplicate float64
	// Spike is the probability a primary transmission is delayed by an
	// extra uniform(0, SpikeMax] latency spike.
	Spike float64
	// SpikeMax bounds the injected spike.
	SpikeMax time.Duration
	// Partition is the probability, per sequence number, that a temporary
	// partition burst starts there: that message and the next
	// PartitionLen-1 on the same pair are discarded.
	Partition float64
	// PartitionLen is the burst length in messages (default 4).
	PartitionLen int
}

// Faults configures the fault injector. The zero value injects nothing.
type Faults struct {
	// Seed selects the schedule; equal seeds yield byte-identical event
	// logs for the same traffic shape.
	Seed uint64
	// Intra and Inter are the fault rates of the two link classes.
	Intra, Inter LinkFaults
	// Stall is the per-send probability that the sending rank pauses for
	// a uniform(0, StallMax] duration before dispatching.
	Stall float64
	// StallMax bounds the injected stall.
	StallMax time.Duration
	// Cut lists directed rank pairs whose link is partitioned permanently:
	// every transmission attempt (retransmissions included) is discarded,
	// so the pair's retransmit budget must exhaust. Static configuration,
	// not part of the seeded schedule.
	Cut [][2]int
}

// DefaultFaults is the default chaos schedule: drops, duplicates and
// latency spikes on both link classes, occasional short partitions on the
// fabric, and rare stalls — lively enough that every recovery path of the
// MPI layer is exercised in a few hundred messages, gentle enough that
// small runs still finish quickly.
func DefaultFaults(seed uint64) Faults {
	return Faults{
		Seed: seed,
		Intra: LinkFaults{
			Drop: 0.02, Duplicate: 0.02, Spike: 0.05, SpikeMax: 200 * time.Microsecond,
		},
		Inter: LinkFaults{
			Drop: 0.05, Duplicate: 0.03, Spike: 0.08, SpikeMax: 500 * time.Microsecond,
			Partition: 0.002, PartitionLen: 4,
		},
		Stall: 0.002, StallMax: 300 * time.Microsecond,
	}
}

// Enabled reports whether the configuration can inject anything at all.
func (f Faults) Enabled() bool {
	lf := func(l LinkFaults) bool {
		return l.Drop > 0 || l.Duplicate > 0 || l.Spike > 0 || l.Partition > 0
	}
	return lf(f.Intra) || lf(f.Inter) || f.Stall > 0 || len(f.Cut) > 0
}

// Decision is the injector's verdict on one primary transmission.
type Decision struct {
	// Drop discards the transmission (plain drop, partition burst, or a
	// permanent cut). The reliable layer recovers it by retransmission
	// unless Cut is also set.
	Drop bool
	// Cut marks the drop as a permanent link cut: retransmissions are
	// discarded too, so the link's retry budget will exhaust.
	Cut bool
	// Duplicate delivers the transmission twice.
	Duplicate bool
	// Spike is extra latency to add to the model's transfer time.
	Spike time.Duration
}

// FaultStats counts injected events per kind.
type FaultStats struct {
	Drops, Duplicates, Spikes, PartitionDrops, Stalls int64
}

// Total sums all injected events.
func (s FaultStats) Total() int64 {
	return s.Drops + s.Duplicates + s.Spikes + s.PartitionDrops + s.Stalls
}

// String renders the counters for the run summary.
func (s FaultStats) String() string {
	return fmt.Sprintf("%d drops, %d duplicates, %d spikes, %d partition drops, %d stalls",
		s.Drops, s.Duplicates, s.Spikes, s.PartitionDrops, s.Stalls)
}

// Injector evaluates a Faults configuration. It is safe for concurrent
// use by every rank of a world; the recorded schedule is retrieved with
// Log (deterministically sorted) after the run.
type Injector struct {
	cfg Faults
	cut map[[2]int]bool

	// OnEvent, when non-nil, observes every injected event as it happens
	// (the harness routes it into the execution trace). It must be set
	// before the injector sees traffic and must be safe for concurrent
	// use.
	OnEvent func(FaultEvent)

	counts [numFaultKinds]atomic.Int64

	mu  sync.Mutex
	log []FaultEvent
}

// NewInjector compiles a configuration.
func NewInjector(cfg Faults) *Injector {
	in := &Injector{cfg: cfg}
	if len(cfg.Cut) > 0 {
		in.cut = make(map[[2]int]bool, len(cfg.Cut))
		for _, p := range cfg.Cut {
			in.cut[p] = true
		}
	}
	return in
}

// Config returns the configuration the injector was compiled from.
func (in *Injector) Config() Faults { return in.cfg }

// streamFor derives the PCG stream of one (domain, a, b, seq) tuple. The
// multipliers are arbitrary odd 64-bit constants (splitmix64-flavoured)
// that spread the key space; determinism only needs them fixed.
func (in *Injector) streamFor(domain, a, b, seq int) *rand.Rand {
	k := in.cfg.Seed
	k ^= uint64(domain+1) * 0x9e3779b97f4a7c15
	k ^= uint64(a+1) * 0xbf58476d1ce4e5b9
	k ^= uint64(b+2) * 0x94d049bb133111eb
	return rand.New(rand.NewPCG(k, uint64(seq)))
}

// draws holds the per-sequence random draws of one link message.
type draws struct {
	u         float64 // event selector
	spikeFrac float64 // spike magnitude fraction
	burst     bool    // a partition burst starts at this seq
}

func (in *Injector) drawsFor(class int, src, dst, seq int, l LinkFaults) draws {
	s := in.streamFor(class, src, dst, seq)
	var d draws
	d.u = s.Float64()
	d.spikeFrac = s.Float64()
	d.burst = s.Float64() < l.Partition
	return d
}

// linkClass returns the class index used in the stream key: 0 intra-node,
// 1 inter-node.
func linkClass(sameNode bool) int {
	if sameNode {
		return 0
	}
	return 1
}

// Send decides the fate of primary transmission seq on the (src, dst)
// pair and records the injected event, if any. It must be called exactly
// once per primary transmission; retransmissions must not consult it.
//
//amr:det
func (in *Injector) Send(sameNode bool, src, dst, seq int) Decision {
	var dec Decision
	if in.cut != nil && in.cut[[2]int{src, dst}] {
		// Static cut: drop silently (not part of the seeded schedule).
		dec.Drop, dec.Cut = true, true
		return dec
	}
	l := in.cfg.Intra
	if !sameNode {
		l = in.cfg.Inter
	}
	class := linkClass(sameNode)

	// Temporary partition: seq is discarded when a burst started at any
	// of the previous PartitionLen-1 sequence numbers (or here).
	if l.Partition > 0 {
		plen := l.PartitionLen
		if plen <= 0 {
			plen = 4
		}
		for back := 0; back < plen && back <= seq; back++ {
			if in.drawsFor(class, src, dst, seq-back, l).burst {
				dec.Drop = true
				in.record(FaultEvent{Kind: FaultPartition, Src: src, Dst: dst, Seq: seq})
				return dec
			}
		}
	}

	d := in.drawsFor(class, src, dst, seq, l)
	switch {
	case d.u < l.Drop:
		dec.Drop = true
		in.record(FaultEvent{Kind: FaultDrop, Src: src, Dst: dst, Seq: seq})
	case d.u < l.Drop+l.Duplicate:
		dec.Duplicate = true
		in.record(FaultEvent{Kind: FaultDuplicate, Src: src, Dst: dst, Seq: seq})
	case d.u < l.Drop+l.Duplicate+l.Spike && l.SpikeMax > 0:
		dec.Spike = time.Duration(d.spikeFrac * float64(l.SpikeMax))
		if dec.Spike <= 0 {
			dec.Spike = 1
		}
		in.record(FaultEvent{Kind: FaultSpike, Src: src, Dst: dst, Seq: seq, Delay: dec.Spike})
	}
	return dec
}

// Cut reports whether the (src, dst) link is permanently cut; the
// reliable layer consults it on retransmissions (which never consume
// seeded draws).
func (in *Injector) Cut(src, dst int) bool {
	return in.cut != nil && in.cut[[2]int{src, dst}]
}

// Stall returns how long rank must pause before its n-th send (counting
// from 0), or zero. Like Send, it is a pure function of (Seed, rank, n).
func (in *Injector) Stall(rank, n int) time.Duration {
	if in.cfg.Stall <= 0 || in.cfg.StallMax <= 0 {
		return 0
	}
	s := in.streamFor(2, rank, -1, n)
	if s.Float64() >= in.cfg.Stall {
		return 0
	}
	d := time.Duration(s.Float64() * float64(in.cfg.StallMax))
	if d <= 0 {
		d = 1
	}
	in.record(FaultEvent{Kind: FaultStall, Src: rank, Dst: -1, Seq: n, Delay: d})
	return d
}

// record files an event into the schedule log and counters.
func (in *Injector) record(ev FaultEvent) {
	switch ev.Kind {
	case FaultDrop:
		in.counts[FaultDrop].Add(1)
	case FaultDuplicate:
		in.counts[FaultDuplicate].Add(1)
	case FaultSpike:
		in.counts[FaultSpike].Add(1)
	case FaultPartition:
		in.counts[FaultPartition].Add(1)
	case FaultStall:
		in.counts[FaultStall].Add(1)
	}
	in.mu.Lock()
	in.log = append(in.log, ev)
	in.mu.Unlock()
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
}

// Stats returns the injected-event counters.
func (in *Injector) Stats() FaultStats {
	return FaultStats{
		Drops:          in.counts[FaultDrop].Load(),
		Duplicates:     in.counts[FaultDuplicate].Load(),
		Spikes:         in.counts[FaultSpike].Load(),
		PartitionDrops: in.counts[FaultPartition].Load(),
		Stalls:         in.counts[FaultStall].Load(),
	}
}

// Log returns the injected-event schedule in a deterministic order
// (by src, dst, seq, kind): for a fixed seed and traffic shape the
// rendering of this slice is byte-identical across runs, whatever the
// goroutine interleaving was.
func (in *Injector) Log() []FaultEvent {
	in.mu.Lock()
	out := make([]FaultEvent, len(in.log))
	copy(out, in.log)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	return out
}

// LogString renders the schedule one event per line, the form the seeded
// chaos suite compares across runs.
func LogString(events []FaultEvent) string {
	var b []byte
	for _, e := range events {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}
