package simnet

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// chaosConfig is a lively schedule used across the determinism tests.
func chaosConfig(seed uint64) Faults {
	return Faults{
		Seed: seed,
		Intra: LinkFaults{
			Drop: 0.1, Duplicate: 0.1, Spike: 0.2, SpikeMax: time.Millisecond,
		},
		Inter: LinkFaults{
			Drop: 0.15, Duplicate: 0.1, Spike: 0.2, SpikeMax: 2 * time.Millisecond,
			Partition: 0.01, PartitionLen: 3,
		},
		Stall: 0.05, StallMax: time.Millisecond,
	}
}

// TestChaosDecisionsArePure verifies that the verdict on a given
// (class, src, dst, seq) tuple does not depend on query order or on any
// other query: the schedule is a pure function of the seed.
func TestChaosDecisionsArePure(t *testing.T) {
	const n = 500
	a := NewInjector(chaosConfig(42))
	b := NewInjector(chaosConfig(42))

	type key struct {
		same     bool
		src, dst int
		seq      int
	}
	var keys []key
	for seq := 0; seq < n; seq++ {
		keys = append(keys, key{true, 0, 1, seq}, key{false, 1, 2, seq})
	}
	decA := make(map[key]Decision)
	for _, k := range keys {
		decA[k] = a.Send(k.same, k.src, k.dst, k.seq)
	}
	// Query b in a shuffled order (deterministic shuffle).
	r := rand.New(rand.NewPCG(7, 7))
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if got := b.Send(k.same, k.src, k.dst, k.seq); got != decA[k] {
			t.Fatalf("decision for %+v differs across query orders: %+v vs %+v", k, got, decA[k])
		}
	}
	if la, lb := LogString(a.Log()), LogString(b.Log()); la != lb {
		t.Errorf("sorted event logs differ across query orders:\n--- a ---\n%s--- b ---\n%s", la, lb)
	}
}

// TestChaosLogReproducible runs the same query schedule twice, from
// concurrent goroutines, and demands byte-identical logs.
func TestChaosLogReproducible(t *testing.T) {
	run := func() string {
		in := NewInjector(chaosConfig(1234))
		var wg sync.WaitGroup
		for pair := 0; pair < 4; pair++ {
			wg.Add(1)
			go func(pair int) {
				defer wg.Done()
				for seq := 0; seq < 300; seq++ {
					in.Send(pair%2 == 0, pair, pair+1, seq)
				}
				for n := 0; n < 100; n++ {
					in.Stall(pair, n)
				}
			}(pair)
		}
		wg.Wait()
		return LogString(in.Log())
	}
	first := run()
	if first == "" {
		t.Fatal("schedule injected no events; rates too low for the test to mean anything")
	}
	if second := run(); second != first {
		t.Errorf("same seed produced different logs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// A different seed must produce a different schedule.
	other := NewInjector(chaosConfig(99))
	for seq := 0; seq < 300; seq++ {
		other.Send(true, 0, 1, seq)
		other.Send(false, 1, 2, seq)
	}
	if LogString(other.Log()) == first {
		t.Error("different seeds produced identical logs")
	}
}

// TestPartitionBurstContiguity: every partition burst drops PartitionLen
// consecutive sequence numbers (unless truncated by seq 0).
func TestPartitionBurstContiguity(t *testing.T) {
	cfg := Faults{
		Seed:  5,
		Inter: LinkFaults{Partition: 0.02, PartitionLen: 4},
	}
	in := NewInjector(cfg)
	const n = 2000
	dropped := make([]bool, n)
	for seq := 0; seq < n; seq++ {
		d := in.Send(false, 0, 1, seq)
		dropped[seq] = d.Drop
	}
	count := 0
	for seq := 0; seq < n; seq++ {
		if !dropped[seq] {
			continue
		}
		count++
		// A dropped seq must belong to a burst whose start is within
		// PartitionLen-1 positions back; bursts therefore appear as runs
		// of length >= min(PartitionLen, seq+1) unless merged. Check the
		// cheap invariant: a drop is adjacent to another drop whenever
		// the burst is longer than one.
		if cfg.Inter.PartitionLen > 1 && seq+1 < n {
			prev := seq > 0 && dropped[seq-1]
			next := dropped[seq+1]
			if !prev && !next {
				t.Errorf("isolated partition drop at seq %d (burst len %d)", seq, cfg.Inter.PartitionLen)
			}
		}
	}
	if count == 0 {
		t.Fatal("no partition drops injected; raise the rate")
	}
}

// TestRatesRoughlyHonoured sanity-checks that a 10%% drop rate lands in
// the right ballpark over many draws.
func TestRatesRoughlyHonoured(t *testing.T) {
	in := NewInjector(Faults{Seed: 8, Inter: LinkFaults{Drop: 0.1}})
	const n = 5000
	drops := 0
	for seq := 0; seq < n; seq++ {
		if in.Send(false, 0, 1, seq).Drop {
			drops++
		}
	}
	if drops < n/20 || drops > n/5 {
		t.Errorf("drop rate 0.1 injected %d/%d drops", drops, n)
	}
}

// TestCutLinks: permanent cuts drop every attempt, are reported as Cut,
// and stay out of the seeded schedule log.
func TestCutLinks(t *testing.T) {
	in := NewInjector(Faults{Seed: 3, Cut: [][2]int{{0, 1}}})
	for seq := 0; seq < 50; seq++ {
		d := in.Send(false, 0, 1, seq)
		if !d.Drop || !d.Cut {
			t.Fatalf("cut link delivered seq %d: %+v", seq, d)
		}
	}
	if !in.Cut(0, 1) {
		t.Error("Cut(0,1) = false for a cut link")
	}
	if in.Cut(1, 0) {
		t.Error("Cut(1,0) = true for the uncut reverse direction")
	}
	if d := in.Send(false, 1, 0, 0); d.Drop {
		t.Errorf("reverse direction dropped: %+v", d)
	}
	if log := in.Log(); len(log) != 0 {
		t.Errorf("cut drops leaked into the seeded log: %v", log)
	}
}

// TestStallDeterminism: stalls are a pure function of (seed, rank, n) and
// recorded in the log.
func TestStallDeterminism(t *testing.T) {
	a := NewInjector(Faults{Seed: 11, Stall: 0.2, StallMax: time.Millisecond})
	b := NewInjector(Faults{Seed: 11, Stall: 0.2, StallMax: time.Millisecond})
	stalls := 0
	for n := 0; n < 200; n++ {
		da, db := a.Stall(3, n), b.Stall(3, n)
		if da != db {
			t.Fatalf("stall(3,%d) differs: %v vs %v", n, da, db)
		}
		if da > 0 {
			stalls++
			if da > time.Millisecond {
				t.Errorf("stall %v exceeds StallMax", da)
			}
		}
	}
	if stalls == 0 {
		t.Fatal("no stalls injected")
	}
	if got := a.Stats().Stalls; got != int64(stalls) {
		t.Errorf("Stats().Stalls = %d, want %d", got, stalls)
	}
}

// TestOnEventObserver: every recorded event reaches the observer.
func TestOnEventObserver(t *testing.T) {
	in := NewInjector(Faults{Seed: 21, Inter: LinkFaults{Drop: 0.5}})
	var mu sync.Mutex
	seen := 0
	in.OnEvent = func(ev FaultEvent) {
		mu.Lock()
		seen++
		mu.Unlock()
		if ev.Kind != FaultDrop {
			t.Errorf("unexpected event kind %v", ev.Kind)
		}
	}
	for seq := 0; seq < 100; seq++ {
		in.Send(false, 0, 1, seq)
	}
	if int64(seen) != in.Stats().Drops || seen == 0 {
		t.Errorf("observer saw %d events, stats say %d", seen, in.Stats().Drops)
	}
}

// TestEnabled covers the zero-value and the knobs one by one.
func TestEnabled(t *testing.T) {
	if (Faults{}).Enabled() {
		t.Error("zero Faults reports enabled")
	}
	cases := []Faults{
		{Intra: LinkFaults{Drop: 0.1}},
		{Inter: LinkFaults{Duplicate: 0.1}},
		{Inter: LinkFaults{Spike: 0.1, SpikeMax: time.Millisecond}},
		{Inter: LinkFaults{Partition: 0.1}},
		{Stall: 0.1, StallMax: time.Millisecond},
		{Cut: [][2]int{{0, 1}}},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: Enabled() = false", i)
		}
	}
	if !DefaultFaults(1).Enabled() {
		t.Error("DefaultFaults reports disabled")
	}
}
