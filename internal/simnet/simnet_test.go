package simnet

import (
	"testing"
	"time"
)

func TestZeroModelChargesNothing(t *testing.T) {
	m := None()
	if !m.IsZero() {
		t.Error("None() should be zero model")
	}
	if d := m.Delay(false, 1<<20); d != 0 {
		t.Errorf("zero model delay = %v, want 0", d)
	}
}

func TestLatencyOnly(t *testing.T) {
	m := Model{IntraNodeLatency: time.Microsecond, InterNodeLatency: time.Millisecond}
	if d := m.Delay(true, 0); d != time.Microsecond {
		t.Errorf("intra delay = %v, want 1us", d)
	}
	if d := m.Delay(false, 0); d != time.Millisecond {
		t.Errorf("inter delay = %v, want 1ms", d)
	}
}

func TestBandwidthTerm(t *testing.T) {
	m := Model{InterNodeBandwidth: 1e6} // 1 MB/s
	// 1000 bytes at 1 MB/s = 1 ms.
	if d := m.Delay(false, 1000); d != time.Millisecond {
		t.Errorf("delay = %v, want 1ms", d)
	}
	// Intra-node bandwidth is unset (infinite), so intra messages are free.
	if d := m.Delay(true, 1000); d != 0 {
		t.Errorf("intra delay = %v, want 0", d)
	}
}

func TestDelayMonotonicInSize(t *testing.T) {
	m := Default()
	prev := time.Duration(-1)
	for _, bytes := range []int{0, 100, 10_000, 1_000_000} {
		d := m.Delay(false, bytes)
		if d < prev {
			t.Errorf("delay decreased: %v after %v for %d bytes", d, prev, bytes)
		}
		prev = d
	}
}

func TestInterCostsMoreThanIntra(t *testing.T) {
	m := Default()
	if m.Delay(false, 4096) <= m.Delay(true, 4096) {
		t.Error("inter-node transfer should cost more than intra-node")
	}
}

func TestApplySkipsTinyDelays(t *testing.T) {
	m := Model{IntraNodeLatency: time.Nanosecond}
	start := time.Now()
	m.Apply(true, 0)
	if elapsed := time.Since(start); elapsed > time.Millisecond {
		t.Errorf("Apply of 1ns delay slept %v; should have been skipped", elapsed)
	}
}

func TestApplyRealisesLargeDelay(t *testing.T) {
	m := Model{InterNodeLatency: 2 * time.Millisecond}
	start := time.Now()
	m.Apply(false, 0)
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("Apply slept only %v, want >= ~2ms", elapsed)
	}
}

func TestSlowModel(t *testing.T) {
	m := Slow()
	if m.IsZero() {
		t.Error("Slow() should charge")
	}
	if m.Delay(false, 0) <= Default().Delay(false, 0) {
		t.Error("Slow inter-node latency should exceed Default")
	}
	if m.Delay(false, 1<<20) <= m.Delay(true, 1<<20) {
		t.Error("Slow inter should exceed intra")
	}
	if d := m.EffectiveDelay(true, 0); d != 0 {
		t.Errorf("intra 5us should be below sleep granularity, got %v", d)
	}
	if d := m.EffectiveDelay(false, 0); d == 0 {
		t.Error("inter 1.5ms should be realised")
	}
}
