package task

import (
	"sync/atomic"
	"testing"
)

// BenchmarkSpawnIndependent measures task spawn+execute+retire cost with
// no dependencies.
func BenchmarkSpawnIndependent(b *testing.B) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn("t", func(*Task) { atomic.AddInt64(&sink, 1) })
	}
	rt.Wait()
}

// BenchmarkSpawnChain measures a fully serialised dependency chain — the
// worst case for the dependency tracker and the best case for the
// immediate-successor policy.
func BenchmarkSpawnChain(b *testing.B) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn("t", func(*Task) {}, InOut("chain")...)
	}
	rt.Wait()
}

// BenchmarkSpawnChainNoImmediateSuccessor is the ablation counterpart of
// BenchmarkSpawnChain: every link goes through the scheduler queue.
func BenchmarkSpawnChainNoImmediateSuccessor(b *testing.B) {
	rt := MustNewRuntime(Options{Workers: 4, DisableImmediateSuccessor: true})
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn("t", func(*Task) {}, InOut("chain")...)
	}
	rt.Wait()
}

// BenchmarkSpawnFanOut measures one writer releasing many readers.
func BenchmarkSpawnFanOut(b *testing.B) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn("w", func(*Task) {}, Out("k")...)
		for r := 0; r < 8; r++ {
			rt.Spawn("r", func(*Task) {}, In("k")...)
		}
	}
	rt.Wait()
}

// BenchmarkExternalEvents measures the TAMPI-style bound-event path.
func BenchmarkExternalEvents(b *testing.B) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn("t", func(t *Task) {
			t.AddEvents(1)
			t.CompleteEvent()
		})
	}
	rt.Wait()
}

// BenchmarkMultidependency measures a task with a wide access list, the
// shape of aggregated send tasks.
func BenchmarkMultidependency(b *testing.B) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	keys := make([]any, 16)
	for i := range keys {
		keys[i] = i
	}
	accs := In(keys...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn("t", func(*Task) {}, accs...)
	}
	rt.Wait()
}
