package task

import "sync/atomic"

// node is the runtime's internal task record. A node with a non-nil waitCh
// is a WaitAccess pseudo-task: it is never executed, only signalled when
// its dependencies release.
type node struct {
	rt    *Runtime
	label string
	body  func(t *Task)
	id    uint64 // spawn-ordered task id; 0 for WaitAccess pseudo-nodes

	pending    int     // unsatisfied predecessor count; guarded by rt.mu
	successors []*node // guarded by rt.mu
	finished   bool    // guarded by rt.mu

	// events counts outstanding completion obligations: 1 for the body
	// plus one per bound external event. The task finishes (releases its
	// dependencies) when events reaches zero. Accessed atomically.
	events int32

	//amr:chan owner=finish
	waitCh chan struct{} // non-nil only for WaitAccess pseudo-nodes
}

// run executes n and then, under the immediate-successor policy, keeps
// executing newly released successors on the same virtual core. core < 0
// means the goroutine must first acquire a core.
func (n *node) run(core int) {
	rt := n.rt
	for {
		if core < 0 {
			core = <-rt.cores
		}
		t := &Task{node: n, core: core}
		runBody(n, t)
		core = t.core // Suspend may have exchanged the core id
		if rt.onTaskEnd != nil {
			rt.onTaskEnd(n.label, core)
		}
		ready, finishedNow := n.completeEvent()
		if !finishedNow {
			// Bound events still in flight: the core is free, the task
			// will finish from the last event's completion callback.
			rt.cores <- core
			return
		}
		var next *node
		if rt.imsucc && len(ready) > 0 {
			next, ready = ready[0], ready[1:]
		}
		for _, m := range ready {
			go m.run(-1)
		}
		if next == nil {
			rt.cores <- core
			return
		}
		n = next
	}
}

// runBody invokes the task body, converting panics into a recorded runtime
// failure so the graph still drains and Wait can rethrow deterministically.
func runBody(n *node, t *Task) {
	defer func() {
		if p := recover(); p != nil {
			n.rt.recordPanic(p)
		}
	}()
	n.body(t)
}

func (rt *Runtime) recordPanic(p any) {
	rt.mu.Lock()
	if rt.firstPanic == nil {
		rt.firstPanic = p
	}
	rt.mu.Unlock()
}

// completeEvent consumes one outstanding event. When the last event is
// consumed the task finishes: it releases its dependencies and returns the
// successors that became ready.
func (n *node) completeEvent() (ready []*node, finished bool) {
	if atomic.AddInt32(&n.events, -1) != 0 {
		return nil, false
	}
	return n.finish(), true
}

// finish marks n done and releases its dependency edges. It returns the
// successors whose last predecessor was n. WaitAccess pseudo-nodes are
// signalled instead of scheduled.
func (n *node) finish() []*node {
	rt := n.rt
	rt.mu.Lock()
	n.finished = true
	if rt.obs != nil && n.id != 0 {
		rt.obs.TaskFinished(n.id)
	}
	var ready []*node
	for _, s := range n.successors {
		s.pending--
		if s.pending == 0 {
			if s.waitCh != nil {
				close(s.waitCh)
			} else {
				ready = append(ready, s)
			}
		}
	}
	n.successors = nil
	rt.live--
	if rt.live == 0 {
		// The whole graph drained: all dependency state refers to finished
		// tasks and can be dropped, bounding memory across refinement
		// epochs that retire old block keys.
		rt.deps = make(map[any]*depState)
		rt.cond.Broadcast()
	}
	rt.mu.Unlock()
	return ready
}

// Task is the handle passed to a task body.
type Task struct {
	node *node
	core int
}

// Label returns the label the task was spawned with.
func (t *Task) Label() string { return t.node.label }

// ID returns the task's runtime-unique id (positive, in spawn order), the
// identity the sanitizer's access notes attach to.
func (t *Task) ID() uint64 { return t.node.id }

// Worker returns the virtual core currently executing the task.
func (t *Task) Worker() int { return t.core }

// Runtime returns the runtime executing the task.
func (t *Task) Runtime() *Runtime { return t.node.rt }

// AddEvents binds k additional external events to the task. The task will
// not release its dependencies until CompleteEvent has been called once per
// bound event (and the body has returned). AddEvents must be called from
// the task body, before it returns. This is the OmpSs-2 external-events API
// that TAMPI builds Iwait on.
func (t *Task) AddEvents(k int) {
	if k <= 0 {
		panic("task: AddEvents requires a positive count")
	}
	atomic.AddInt32(&t.node.events, int32(k))
}

// CompleteEvent consumes one bound event. It may be called from any
// goroutine (typically an MPI completion callback). When the final
// obligation completes, the task releases its dependencies and its ready
// successors are scheduled.
func (t *Task) CompleteEvent() {
	ready, finished := t.node.completeEvent()
	if !finished {
		return
	}
	for _, m := range ready {
		go m.run(-1)
	}
}

// Suspend parks the task until ch is closed (or receives), releasing its
// virtual core so other tasks can run — the mechanism behind blocking
// TAMPI operations. If ch is already ready, the task keeps its core.
func (t *Task) Suspend(ch <-chan struct{}) {
	select {
	case <-ch:
		return
	default:
	}
	rt := t.node.rt
	rt.cores <- t.core
	<-ch
	t.core = <-rt.cores
}
