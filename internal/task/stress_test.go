package task

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentSpawnAndWaitKeys exercises WaitAccess racing with ongoing
// spawns from another goroutine, the exact pattern of the delayed-checksum
// optimisation (main thread waits on old keys while spawning new stages).
func TestConcurrentSpawnAndWaitKeys(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var phase1 int32
	for i := 0; i < 50; i++ {
		rt.Spawn("p1", func(*Task) { atomic.AddInt32(&phase1, 1) }, Out(i)...)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent spawner of unrelated work
		defer wg.Done()
		for i := 0; i < 50; i++ {
			rt.Spawn("p2", func(*Task) {}, Out(1000+i)...)
		}
	}()
	keys := make([]any, 50)
	for i := range keys {
		keys[i] = i
	}
	rt.WaitKeys(keys...)
	if got := atomic.LoadInt32(&phase1); got != 50 {
		t.Errorf("WaitKeys returned with %d/50 phase-1 tasks done", got)
	}
	wg.Wait()
	rt.Wait()
}

// TestSuspendCombinedWithEvents covers a task that both suspends and binds
// events, like a communication task mixing blocking and non-blocking TAMPI.
func TestSuspendCombinedWithEvents(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	gate := make(chan struct{})
	var handle *Task
	ready := make(chan struct{})
	var successorRan int32
	rt.Spawn("mixed", func(tk *Task) {
		tk.AddEvents(1)
		handle = tk
		close(ready)
		tk.Suspend(gate) // pause mid-body
	}, Out("k")...)
	rt.Spawn("succ", func(*Task) { atomic.StoreInt32(&successorRan, 1) }, In("k")...)
	<-ready
	close(gate) // resume the body
	time.Sleep(2 * time.Millisecond)
	if atomic.LoadInt32(&successorRan) != 0 {
		t.Fatal("successor ran while an event was still bound")
	}
	handle.CompleteEvent()
	rt.Wait()
	if atomic.LoadInt32(&successorRan) != 1 {
		t.Fatal("successor never ran")
	}
}

// TestManyWaiters stresses multiple concurrent WaitAccess callers.
func TestManyWaiters(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var done int32
	for i := 0; i < 20; i++ {
		rt.Spawn("w", func(*Task) {
			time.Sleep(100 * time.Microsecond)
			atomic.AddInt32(&done, 1)
		}, Out(i)...)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt.WaitKeys(i)
			if atomic.LoadInt32(&done) < 1 {
				t.Errorf("waiter %d returned before its writer", i)
			}
		}(i)
	}
	wg.Wait()
	rt.Wait()
}

// TestDepStateResetAfterDrain verifies that dependency state is recycled
// once the graph drains (the memory-bounding behaviour across refinement
// epochs): a long run over ever-fresh keys must not accumulate state that
// changes semantics.
func TestDepStateResetAfterDrain(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	for epoch := 0; epoch < 20; epoch++ {
		var order []int
		var mu sync.Mutex
		for i := 0; i < 10; i++ {
			i := i
			rt.Spawn("t", func(*Task) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			}, InOut("shared")...)
		}
		rt.Wait()
		for i, v := range order {
			if v != i {
				t.Fatalf("epoch %d: order %v", epoch, order)
			}
		}
	}
}

// TestRandomStress runs a randomized mixture of chains, fans and events
// under the race detector's eye.
func TestRandomStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := MustNewRuntime(Options{Workers: 3})
	defer rt.Shutdown()
	var bodies int64
	const n = 500
	for i := 0; i < n; i++ {
		var accs []Access
		for a := 0; a < rng.Intn(3); a++ {
			mode := ModeIn
			if rng.Intn(2) == 0 {
				mode = ModeInOut
			}
			accs = append(accs, Access{Key: rng.Intn(5), Mode: mode})
		}
		withEvent := rng.Intn(4) == 0
		eventDelay := time.Duration(rng.Int63n(100)) * time.Microsecond
		rt.Spawn("t", func(tk *Task) {
			atomic.AddInt64(&bodies, 1)
			if withEvent {
				tk.AddEvents(1)
				go func() {
					time.Sleep(eventDelay)
					tk.CompleteEvent()
				}()
			}
		}, accs...)
	}
	rt.Wait()
	if bodies != n {
		t.Errorf("ran %d bodies, want %d", bodies, n)
	}
}
