package task

// Observer receives task-graph lifecycle events for the runtime sanitizer.
// All callbacks are invoked with the runtime's internal lock held, so they
// are serialised with respect to each other; implementations must not call
// back into the Runtime. Every hook site is nil-guarded: a runtime without
// an observer pays one pointer check per event and nothing else.
//
// Task ids are positive and unique within one Runtime, in spawn order.
// WaitAccess/WaitKeys pseudo-tasks carry no id and are never reported.
type Observer interface {
	// TaskSpawned fires when Spawn registers a task, before any of its
	// dependence edges. The accs slice is the caller's; implementations
	// must copy what they keep.
	TaskSpawned(id uint64, label string, accs []Access)
	// TaskDependence fires when the graph adds an edge: succ will not
	// start until pred has released its dependencies.
	TaskDependence(pred, succ uint64)
	// TaskFinished fires when a task releases its dependencies (body
	// returned and all bound events completed).
	TaskFinished(id uint64)
	// Quiesced fires when Wait observes a fully drained graph: every task
	// spawned so far has finished, so accesses before the quiescent point
	// are ordered against everything spawned after it.
	Quiesced()
}
