package task

// WidthMeter is an Observer that measures the dynamic concurrency width
// of a task graph: the high-water mark of the ready set — tasks whose
// predecessors have all finished but which have not themselves finished,
// i.e. everything the scheduler could legally run at one instant. The
// ready set is always an antichain of the dependence DAG, so the
// high-water mark is the empirical counterpart of the static model's
// MaxWidth (see internal/analysis' cost model) and must stay at or below
// it when the model's instance counts match the run.
//
// All callbacks arrive serialised under the runtime's lock, so the meter
// needs no locking of its own; read the results only after the graph
// quiesced (Wait returned or the runtime shut down).
//
// The meter deliberately samples on dependence and finish events, not on
// spawns: a task's edges arrive immediately after its spawn under the
// same lock hold, so sampling at spawn would briefly count a dependent
// task as ready. The measurement is therefore a lower bound on the true
// ready-set maximum — safe on both sides of the static comparison.
type WidthMeter struct {
	pending map[uint64]int      // task -> unfinished predecessor count
	succs   map[uint64][]uint64 // finished-notification fan-out
	ready   int
	hwm     int
	spawned int
}

// NewWidthMeter returns an empty meter, ready to be passed as
// task.Options.Observer (or teed alongside a sanitizer with Tee).
func NewWidthMeter() *WidthMeter {
	return &WidthMeter{
		pending: make(map[uint64]int),
		succs:   make(map[uint64][]uint64),
	}
}

// TaskSpawned implements Observer.
func (m *WidthMeter) TaskSpawned(id uint64, label string, accs []Access) {
	m.pending[id] = 0
	m.ready++
	m.spawned++
}

// TaskDependence implements Observer. The runtime reports edges only
// from unfinished predecessors, so every edge gates the successor.
func (m *WidthMeter) TaskDependence(pred, succ uint64) {
	if _, live := m.pending[pred]; !live {
		return
	}
	m.succs[pred] = append(m.succs[pred], succ)
	m.pending[succ]++
	if m.pending[succ] == 1 {
		m.ready--
	}
	m.sample()
}

// TaskFinished implements Observer.
func (m *WidthMeter) TaskFinished(id uint64) {
	m.sample() // the finishing task still holds its slot
	m.ready--
	for _, s := range m.succs[id] {
		m.pending[s]--
		if m.pending[s] == 0 {
			m.ready++
		}
	}
	delete(m.succs, id)
	delete(m.pending, id)
	m.sample()
}

// Quiesced implements Observer.
func (m *WidthMeter) Quiesced() {}

func (m *WidthMeter) sample() {
	if m.ready > m.hwm {
		m.hwm = m.ready
	}
}

// HighWater returns the ready-set high-water mark observed so far.
func (m *WidthMeter) HighWater() int { return m.hwm }

// Spawned returns the number of tasks observed.
func (m *WidthMeter) Spawned() int { return m.spawned }

// Tee fans lifecycle events out to several observers in argument order.
// Nil entries are dropped; with one live observer it is returned
// unwrapped, and with none Tee returns nil, preserving the runtime's
// observer-is-nil fast path.
func Tee(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Observer

func (t tee) TaskSpawned(id uint64, label string, accs []Access) {
	for _, o := range t {
		o.TaskSpawned(id, label, accs)
	}
}

func (t tee) TaskDependence(pred, succ uint64) {
	for _, o := range t {
		o.TaskDependence(pred, succ)
	}
}

func (t tee) TaskFinished(id uint64) {
	for _, o := range t {
		o.TaskFinished(id)
	}
}

func (t tee) Quiesced() {
	for _, o := range t {
		o.Quiesced()
	}
}
