// Package task implements the data-flow tasking runtime the reproduction
// uses in place of OmpSs-2.
//
// Tasks are units of work annotated with dependencies — in (read), out
// (write) or inout accesses on opaque comparable keys, the analogue of
// OmpSs-2/OpenMP dependency clauses over memory regions. The runtime builds
// the task graph incrementally as tasks are spawned and runs a task once
// every predecessor has released its dependencies. Multidependencies are
// simply access lists with several keys.
//
// Features mirrored from OmpSs-2 because the paper relies on them:
//
//   - External events: a task may bind outstanding events (in-flight MPI
//     requests, via the tampi package) so that it releases its
//     dependencies only after both its body has returned and every bound
//     event has completed. This is what makes non-blocking TAMPI
//     operations safe inside tasks.
//   - Blocking suspension: a task may suspend until a channel closes
//     (tampi's blocking operations), releasing its core to other tasks.
//   - Taskwait and taskwait-with-dependencies (WaitAccess/WaitKeys), the
//     feature behind the paper's delayed checksum validation.
//   - An immediate-successor scheduling policy: when a task finishes and
//     unblocks successors, the same virtual core continues with one of
//     them, exploiting temporal locality. The paper credits this policy
//     for the IPC improvement of the data-flow variant; it can be turned
//     off for ablation benchmarks.
//
// Concurrency is bounded by a fixed number of virtual cores (workers).
// Each running task holds one core; suspension and event-bound completion
// release the core so communication-heavy tasks never starve computation.
package task

import (
	"fmt"
	"sync"
)

// Mode distinguishes the access kinds of a dependency clause.
type Mode uint8

const (
	// ModeIn declares a read access: the task runs after the last writer
	// of the key, concurrently with other readers.
	ModeIn Mode = iota
	// ModeOut declares a write access: the task runs after the last
	// writer and all readers since. (No renaming is attempted, so ModeOut
	// and ModeInOut order identically, as in OpenMP.)
	ModeOut
	// ModeInOut declares a read-write access.
	ModeInOut
)

func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	}
	return "unknown"
}

// Access is one dependency clause entry: a mode over a key. Keys may be any
// comparable value; two accesses conflict when their keys are equal.
type Access struct {
	Key  any
	Mode Mode
}

// In builds read accesses over keys.
func In(keys ...any) []Access { return accesses(ModeIn, keys) }

// Out builds write accesses over keys.
func Out(keys ...any) []Access { return accesses(ModeOut, keys) }

// InOut builds read-write accesses over keys.
func InOut(keys ...any) []Access { return accesses(ModeInOut, keys) }

func accesses(m Mode, keys []any) []Access {
	out := make([]Access, len(keys))
	for i, k := range keys {
		out[i] = Access{Key: k, Mode: m}
	}
	return out
}

// Merge concatenates access lists, a convenience for combining In(...) and
// Out(...) clauses on one task.
func Merge(lists ...[]Access) []Access {
	var out []Access
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// Options configure a Runtime.
type Options struct {
	// Workers is the number of virtual cores. Must be positive.
	Workers int
	// DisableImmediateSuccessor turns off the locality policy: finished
	// tasks always push ready successors to the global queue instead of
	// continuing with one on the same core. For ablation measurements.
	DisableImmediateSuccessor bool
	// OnTaskEnd, when set, is invoked after each task body completes with
	// the task's label and the virtual core that ran it. Used by tracing.
	OnTaskEnd func(label string, worker int)
	// Observer, when set, receives task-graph lifecycle events (spawns,
	// dependence edges, completions, quiescent points). Used by the
	// runtime sanitizer; nil costs nothing.
	Observer Observer
}

// Runtime schedules tasks over a fixed set of virtual cores.
type Runtime struct {
	mu      sync.Mutex
	cond    *sync.Cond // signalled when live hits zero
	deps    map[any]*depState
	live    int  // spawned but not yet fully finished tasks
	spawned int  // total tasks ever spawned
	closed  bool // Shutdown called

	cores      chan int // virtual core ids; capacity = Workers
	imsucc     bool
	onTaskEnd  func(string, int)
	obs        Observer // nil unless a sanitizer is attached
	nextID     uint64   // task id source; guarded by mu
	firstPanic any
	panicOnce  sync.Once
}

// depState tracks the most recent writer and subsequent readers of a key.
type depState struct {
	lastWriter *node
	readers    []*node // readers since lastWriter
}

// NewRuntime creates a runtime with the given options.
func NewRuntime(opts Options) (*Runtime, error) {
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("task: Workers must be positive, got %d", opts.Workers)
	}
	rt := &Runtime{
		deps:      make(map[any]*depState),
		cores:     make(chan int, opts.Workers),
		imsucc:    !opts.DisableImmediateSuccessor,
		onTaskEnd: opts.OnTaskEnd,
		obs:       opts.Observer,
	}
	rt.cond = sync.NewCond(&rt.mu)
	for i := 0; i < opts.Workers; i++ {
		rt.cores <- i
	}
	return rt, nil
}

// MustNewRuntime is NewRuntime but panics on invalid options.
func MustNewRuntime(opts Options) *Runtime {
	rt, err := NewRuntime(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// Workers returns the number of virtual cores.
func (rt *Runtime) Workers() int { return cap(rt.cores) }

// SpawnCount returns the total number of tasks spawned so far.
func (rt *Runtime) SpawnCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.spawned
}

// Spawn submits a task with a label (for tracing), a body and dependency
// accesses. The task becomes ready once all conflicting predecessors have
// released their dependencies, and releases its own dependencies when the
// body has returned and all bound events have completed.
func (rt *Runtime) Spawn(label string, body func(t *Task), accs ...Access) {
	n := &node{
		rt:     rt,
		label:  label,
		body:   body,
		events: 1, // the body itself
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		panic("task: Spawn after Shutdown")
	}
	rt.nextID++
	n.id = rt.nextID
	rt.spawned++
	rt.live++
	if rt.obs != nil {
		rt.obs.TaskSpawned(n.id, label, accs)
	}
	rt.link(n, accs)
	ready := n.pending == 0
	rt.mu.Unlock()
	if ready {
		go n.run(-1)
	}
}

// link wires n into the dependency graph. Caller holds rt.mu.
func (rt *Runtime) link(n *node, accs []Access) {
	for _, a := range accs {
		st, ok := rt.deps[a.Key]
		if !ok {
			st = &depState{}
			rt.deps[a.Key] = st
		}
		switch a.Mode {
		case ModeIn:
			rt.addEdge(st.lastWriter, n)
			st.readers = append(st.readers, n)
		case ModeOut, ModeInOut:
			rt.addEdge(st.lastWriter, n)
			for _, r := range st.readers {
				rt.addEdge(r, n)
			}
			st.lastWriter = n
			st.readers = st.readers[:0]
		}
	}
}

// addEdge makes succ depend on pred unless pred is absent, finished, or
// identical to succ (a task reading and writing the same key must not
// depend on itself). Caller holds rt.mu.
func (rt *Runtime) addEdge(pred, succ *node) {
	if pred == nil || pred == succ || pred.finished {
		return
	}
	pred.successors = append(pred.successors, succ)
	succ.pending++
	if rt.obs != nil && pred.id != 0 && succ.id != 0 {
		rt.obs.TaskDependence(pred.id, succ.id)
	}
}

// Wait blocks until every spawned task has finished (an OmpSs-2/OpenMP
// taskwait). If any task panicked, Wait re-panics with the first panic
// value after the graph drains.
func (rt *Runtime) Wait() {
	rt.mu.Lock()
	for rt.live > 0 {
		rt.cond.Wait()
	}
	if rt.obs != nil {
		rt.obs.Quiesced()
	}
	p := rt.firstPanic
	rt.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// WaitAccess blocks until the given accesses could be satisfied — the
// OmpSs-2 "taskwait with dependencies". An in-access waits only for the
// last writer of the key; an out/inout access also waits for readers.
// Unlike Wait, unrelated tasks keep running and new tasks may be spawned
// by other goroutines concurrently.
func (rt *Runtime) WaitAccess(accs ...Access) {
	w := &node{rt: rt, waitCh: make(chan struct{})}
	rt.mu.Lock()
	for _, a := range accs {
		st, ok := rt.deps[a.Key]
		if !ok {
			continue
		}
		switch a.Mode {
		case ModeIn:
			rt.addEdge(st.lastWriter, w)
		case ModeOut, ModeInOut:
			rt.addEdge(st.lastWriter, w)
			for _, r := range st.readers {
				rt.addEdge(r, w)
			}
		}
	}
	ready := w.pending == 0
	rt.mu.Unlock()
	if !ready {
		<-w.waitCh
	}
	rt.rethrow()
}

// WaitKeys is WaitAccess with in-mode over the keys: it blocks until the
// last writers of all keys have finished.
func (rt *Runtime) WaitKeys(keys ...any) {
	rt.WaitAccess(In(keys...)...)
}

func (rt *Runtime) rethrow() {
	rt.mu.Lock()
	p := rt.firstPanic
	rt.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// Shutdown marks the runtime closed after draining all outstanding tasks.
// Further Spawns panic. It is safe to call Shutdown more than once.
func (rt *Runtime) Shutdown() {
	rt.Wait()
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
}
