package task_test

import (
	"sync/atomic"
	"testing"
	"time"

	"miniamr/internal/sanitize"
	"miniamr/internal/task"
)

// These tests pin the runtime's edge behavior around Shutdown and panic
// propagation — the paths a driver hits when a run is torn down or a task
// body fails — including with a sanitizer observer attached, since the
// observer hooks run under the runtime lock on exactly these paths.

func TestShutdownIdempotent(t *testing.T) {
	rt := task.MustNewRuntime(task.Options{Workers: 2})
	var ran atomic.Int32
	for i := 0; i < 4; i++ {
		rt.Spawn("inc", func(*task.Task) { ran.Add(1) })
	}
	rt.Shutdown()
	rt.Shutdown() // must be a no-op, not a deadlock or panic
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks, want 4", got)
	}
}

func TestSpawnAfterShutdownPanics(t *testing.T) {
	rt := task.MustNewRuntime(task.Options{Workers: 1})
	rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Shutdown did not panic")
		}
	}()
	rt.Spawn("late", func(*task.Task) {})
}

func TestWaitAfterShutdown(t *testing.T) {
	rt := task.MustNewRuntime(task.Options{Workers: 2})
	rt.Spawn("writer", func(*task.Task) {}, task.Out("k")...)
	rt.Shutdown()

	// All wait forms must return immediately on a drained, closed
	// runtime — for keys the graph has seen and for keys it never has.
	done := make(chan struct{})
	go func() {
		rt.Wait()
		rt.WaitAccess(task.InOut("k")...)
		rt.WaitKeys("k", "never-seen")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait forms blocked on a shut-down runtime")
	}
}

func TestPanicPropagatesThroughWait(t *testing.T) {
	san := sanitize.New(sanitize.Options{})
	rt := task.MustNewRuntime(task.Options{Workers: 2, Observer: san.Observer(0)})
	rt.Spawn("boom", func(*task.Task) { panic("boom-value") }, task.Out("k")...)
	rt.Spawn("after", func(t *task.Task) {}, task.In("k")...)

	caught := func() (p any) {
		defer func() { p = recover() }()
		rt.Wait()
		return nil
	}()
	if caught != "boom-value" {
		t.Fatalf("Wait rethrew %v, want boom-value", caught)
	}
	// The graph still drained: the panicking task released its deps and
	// the successor ran, so the sanitizer saw a consistent lifecycle.
	for _, r := range san.Finish() {
		t.Errorf("unexpected sanitizer finding after panic: %s", r)
	}
}

func TestPanicPropagatesThroughWaitAccess(t *testing.T) {
	san := sanitize.New(sanitize.Options{})
	rt := task.MustNewRuntime(task.Options{Workers: 1, Observer: san.Observer(0)})
	rt.Spawn("boom", func(*task.Task) { panic("boom-access") }, task.Out("k")...)

	caught := func() (p any) {
		defer func() { p = recover() }()
		rt.WaitAccess(task.In("k")...)
		return nil
	}()
	if caught != "boom-access" {
		t.Fatalf("WaitAccess rethrew %v, want boom-access", caught)
	}
	// Wait must keep rethrowing the same first panic value.
	caught = func() (p any) {
		defer func() { p = recover() }()
		rt.Wait()
		return nil
	}()
	if caught != "boom-access" {
		t.Fatalf("Wait after WaitAccess rethrew %v, want boom-access", caught)
	}
	san.Finish()
}
