package task

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Options{Workers: 0}); err == nil {
		t.Error("Workers=0 should fail")
	}
	if _, err := NewRuntime(Options{Workers: -2}); err == nil {
		t.Error("negative Workers should fail")
	}
	rt, err := NewRuntime(Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", rt.Workers())
	}
}

func TestIndependentTasksAllRun(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var count int64
	for i := 0; i < 100; i++ {
		rt.Spawn("inc", func(*Task) { atomic.AddInt64(&count, 1) })
	}
	rt.Wait()
	if count != 100 {
		t.Errorf("ran %d tasks, want 100", count)
	}
	if rt.SpawnCount() != 100 {
		t.Errorf("SpawnCount = %d, want 100", rt.SpawnCount())
	}
}

func TestWriteAfterWriteOrder(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		i := i
		rt.Spawn("w", func(*Task) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, Out("k")...)
	}
	rt.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("WAW order violated: %v", order)
		}
	}
}

func TestReadersRunConcurrentlyBetweenWriters(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var phase int32 // 0 before write, 1 after write, 2 after second write
	var readersSaw []int32
	var mu sync.Mutex
	barrier := make(chan struct{})
	var arrived int32

	rt.Spawn("writer1", func(*Task) { atomic.StoreInt32(&phase, 1) }, Out("x")...)
	for i := 0; i < 3; i++ {
		rt.Spawn("reader", func(*Task) {
			// All three readers must be in flight at once: they rendezvous
			// before recording, proving reader concurrency.
			if atomic.AddInt32(&arrived, 1) == 3 {
				close(barrier)
			}
			<-barrier
			mu.Lock()
			readersSaw = append(readersSaw, atomic.LoadInt32(&phase))
			mu.Unlock()
		}, In("x")...)
	}
	rt.Spawn("writer2", func(*Task) { atomic.StoreInt32(&phase, 2) }, Out("x")...)
	rt.Wait()

	if len(readersSaw) != 3 {
		t.Fatalf("readers ran %d times, want 3", len(readersSaw))
	}
	for _, p := range readersSaw {
		if p != 1 {
			t.Errorf("reader saw phase %d, want 1 (between the writers)", p)
		}
	}
}

func TestMultidependencies(t *testing.T) {
	// One consumer with in-deps on many keys must wait for all producers.
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	const n = 8
	var produced int32
	keys := make([]any, n)
	for i := range keys {
		keys[i] = i
	}
	for i := 0; i < n; i++ {
		rt.Spawn("produce", func(*Task) {
			time.Sleep(time.Microsecond * 100)
			atomic.AddInt32(&produced, 1)
		}, Out(keys[i])...)
	}
	var sawAll bool
	rt.Spawn("consume", func(*Task) {
		sawAll = atomic.LoadInt32(&produced) == n
	}, In(keys...)...)
	rt.Wait()
	if !sawAll {
		t.Error("consumer ran before all multidep producers finished")
	}
}

func TestMergeAccessLists(t *testing.T) {
	accs := Merge(In("a", "b"), Out("c"), InOut("d"))
	if len(accs) != 4 {
		t.Fatalf("len = %d, want 4", len(accs))
	}
	want := []Mode{ModeIn, ModeIn, ModeOut, ModeInOut}
	for i, a := range accs {
		if a.Mode != want[i] {
			t.Errorf("accs[%d].Mode = %v, want %v", i, a.Mode, want[i])
		}
	}
}

func TestSelfDependencyIgnored(t *testing.T) {
	// inout(x) twice on the same task must not deadlock on itself.
	rt := MustNewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	ran := false
	rt.Spawn("t", func(*Task) { ran = true }, Merge(In("x"), Out("x"))...)
	rt.Wait()
	if !ran {
		t.Error("task with self-conflicting accesses never ran")
	}
}

func TestExternalEventsDelayRelease(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	var taskA *Task
	bodyDone := make(chan struct{})
	var successorRan int32

	rt.Spawn("a", func(t *Task) {
		t.AddEvents(1)
		taskA = t
		close(bodyDone)
	}, Out("k")...)
	rt.Spawn("b", func(*Task) { atomic.AddInt32(&successorRan, 1) }, In("k")...)

	<-bodyDone
	time.Sleep(5 * time.Millisecond)
	if atomic.LoadInt32(&successorRan) != 0 {
		t.Fatal("successor ran while predecessor still had a bound event")
	}
	taskA.CompleteEvent()
	rt.Wait()
	if atomic.LoadInt32(&successorRan) != 1 {
		t.Fatal("successor never ran after event completion")
	}
}

func TestMultipleEvents(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	var h *Task
	ready := make(chan struct{})
	var done int32
	rt.Spawn("a", func(t *Task) {
		t.AddEvents(3)
		h = t
		close(ready)
	}, Out("k")...)
	rt.Spawn("b", func(*Task) { atomic.StoreInt32(&done, 1) }, In("k")...)
	<-ready
	for i := 0; i < 3; i++ {
		if atomic.LoadInt32(&done) != 0 {
			t.Fatalf("successor ran with %d events outstanding", 3-i)
		}
		h.CompleteEvent()
	}
	rt.Wait()
	if done != 1 {
		t.Fatal("successor never ran")
	}
}

func TestSuspendReleasesCore(t *testing.T) {
	// With a single core, a suspended task must let another task run.
	rt := MustNewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	gate := make(chan struct{})
	var bRan int32
	rt.Spawn("a", func(t *Task) {
		t.Suspend(gate)
		if atomic.LoadInt32(&bRan) != 1 {
			panic("resumed before b ran")
		}
	})
	rt.Spawn("b", func(*Task) {
		atomic.StoreInt32(&bRan, 1)
		close(gate)
	})
	rt.Wait()
}

func TestSuspendFastPath(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	closed := make(chan struct{})
	close(closed)
	rt.Spawn("a", func(t *Task) { t.Suspend(closed) })
	rt.Wait()
}

func TestWaitAccessInMode(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var wrote int32
	var unrelated int32
	release := make(chan struct{})
	rt.Spawn("writer", func(*Task) {
		time.Sleep(2 * time.Millisecond)
		atomic.StoreInt32(&wrote, 1)
	}, Out("sum")...)
	rt.Spawn("unrelated", func(*Task) {
		<-release
		atomic.StoreInt32(&unrelated, 1)
	}, Out("other")...)

	rt.WaitKeys("sum")
	if atomic.LoadInt32(&wrote) != 1 {
		t.Error("WaitKeys returned before the writer finished")
	}
	if atomic.LoadInt32(&unrelated) != 0 {
		t.Error("unrelated task should still be blocked — WaitKeys must not be a full barrier")
	}
	close(release)
	rt.Wait()
}

func TestWaitAccessOutModeWaitsForReaders(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 4})
	defer rt.Shutdown()
	var readers int32
	rt.Spawn("writer", func(*Task) {}, Out("k")...)
	for i := 0; i < 3; i++ {
		rt.Spawn("reader", func(*Task) {
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&readers, 1)
		}, In("k")...)
	}
	rt.WaitAccess(Out("k")...)
	if got := atomic.LoadInt32(&readers); got != 3 {
		t.Errorf("WaitAccess(out) returned with %d/3 readers finished", got)
	}
	rt.Wait()
}

func TestWaitAccessUnknownKeyReturnsImmediately(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	done := make(chan struct{})
	go func() {
		rt.WaitKeys("never-seen")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitKeys on unknown key blocked")
	}
}

func TestImmediateSuccessorKeepsCore(t *testing.T) {
	var mu sync.Mutex
	var workers []int
	rt := MustNewRuntime(Options{Workers: 4, OnTaskEnd: func(label string, w int) {
		mu.Lock()
		workers = append(workers, w)
		mu.Unlock()
	}})
	defer rt.Shutdown()
	// A pure chain: with the immediate-successor policy every link must run
	// on the same virtual core as its predecessor. Gate the first link so
	// the whole chain is spawned before any link finishes.
	gate := make(chan struct{})
	const n = 30
	for i := 0; i < n; i++ {
		rt.Spawn("link", func(*Task) { <-gate }, InOut("chain")...)
	}
	close(gate)
	rt.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(workers) != n {
		t.Fatalf("ran %d links, want %d", len(workers), n)
	}
	for _, w := range workers {
		if w != workers[0] {
			t.Fatalf("chain migrated cores: %v", workers)
		}
	}
}

func TestDisableImmediateSuccessorStillCorrect(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 3, DisableImmediateSuccessor: true})
	defer rt.Shutdown()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 15; i++ {
		i := i
		rt.Spawn("t", func(*Task) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, InOut("chain")...)
	}
	rt.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("order violated without immediate successor: %v", order)
		}
	}
}

func TestPanicPropagatesAtWait(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	rt.Spawn("boom", func(*Task) { panic("kaboom") })
	defer func() {
		if p := recover(); p == nil {
			t.Error("Wait did not re-panic the task panic")
		}
	}()
	rt.Wait()
}

func TestPanickedTaskStillReleasesDeps(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	var ran int32
	rt.Spawn("boom", func(*Task) { panic("x") }, Out("k")...)
	rt.Spawn("after", func(*Task) { atomic.StoreInt32(&ran, 1) }, In("k")...)
	func() {
		defer func() { recover() }()
		rt.Wait()
	}()
	if atomic.LoadInt32(&ran) != 1 {
		t.Error("successor of panicked task never ran; graph would deadlock")
	}
}

func TestSpawnAfterShutdownPanics(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 1})
	rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("Spawn after Shutdown should panic")
		}
	}()
	rt.Spawn("late", func(*Task) {})
}

func TestNestedSpawn(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	var inner int32
	rt.Spawn("outer", func(*Task) {
		for i := 0; i < 5; i++ {
			rt.Spawn("inner", func(*Task) { atomic.AddInt32(&inner, 1) })
		}
	})
	rt.Wait()
	if inner != 5 {
		t.Errorf("inner tasks ran %d times, want 5", inner)
	}
}

func TestTaskHandleAccessors(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	rt.Spawn("labelled", func(tk *Task) {
		if tk.Label() != "labelled" {
			t.Errorf("Label = %q", tk.Label())
		}
		if w := tk.Worker(); w < 0 || w >= 2 {
			t.Errorf("Worker = %d out of range", w)
		}
		if tk.Runtime() != rt {
			t.Error("Runtime() mismatch")
		}
	})
	rt.Wait()
}

func TestAddEventsValidation(t *testing.T) {
	rt := MustNewRuntime(Options{Workers: 1})
	rt.Spawn("t", func(tk *Task) {
		defer func() {
			if recover() == nil {
				t.Error("AddEvents(0) should panic")
			}
		}()
		tk.AddEvents(0)
	})
	func() {
		defer func() { recover() }() // the recorded panic rethrows at Wait
		rt.Wait()
	}()
}

func TestModeString(t *testing.T) {
	if ModeIn.String() != "in" || ModeOut.String() != "out" || ModeInOut.String() != "inout" {
		t.Error("Mode.String mismatch")
	}
}

// Property: for random task graphs, execution respects every pairwise
// constraint implied by the dependency rules (serialisability oracle).
func TestPropertyRandomDAGSerialisability(t *testing.T) {
	type access struct {
		key   int
		write bool
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := rng.Intn(30) + 5
		nKeys := rng.Intn(4) + 1
		workers := rng.Intn(4) + 1

		taskAccs := make([][]access, nTasks)
		for i := range taskAccs {
			n := rng.Intn(3) + 1
			for j := 0; j < n; j++ {
				taskAccs[i] = append(taskAccs[i], access{key: rng.Intn(nKeys), write: rng.Intn(2) == 0})
			}
		}

		starts := make([]int64, nTasks)
		ends := make([]int64, nTasks)
		var clock int64

		rt := MustNewRuntime(Options{Workers: workers})
		for i := 0; i < nTasks; i++ {
			i := i
			var accs []Access
			for _, a := range taskAccs[i] {
				m := ModeIn
				if a.write {
					m = ModeOut
				}
				accs = append(accs, Access{Key: a.key, Mode: m})
			}
			rt.Spawn("t", func(*Task) {
				atomic.StoreInt64(&starts[i], atomic.AddInt64(&clock, 1))
				ends[i] = atomic.AddInt64(&clock, 1)
			}, accs...)
		}
		rt.Wait()
		rt.Shutdown()

		conflict := func(a, b []access) bool {
			for _, x := range a {
				for _, y := range b {
					if x.key == y.key && (x.write || y.write) {
						return true
					}
				}
			}
			return false
		}
		for i := 0; i < nTasks; i++ {
			for j := i + 1; j < nTasks; j++ {
				if conflict(taskAccs[i], taskAccs[j]) {
					if ends[i] >= starts[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
