package miniamr_test

import (
	"fmt"
	"math"
	"testing"

	"miniamr"
)

// tinyScale keeps facade tests fast.
var tinyScale = miniamr.Scale{
	BlockCells: 4, Vars: 2, Timesteps: 2, StagesPerTimestep: 3, MaxLevel: 1,
}

func TestFacadeRunDataFlow(t *testing.T) {
	cfg := miniamr.FourSpheres([3]int{2, 2, 1}, tinyScale)
	miniamr.DataFlowOptions(&cfg)
	m, err := miniamr.Run(miniamr.RunSpec{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
		Net: miniamr.NoNet(), Cfg: cfg, Variant: miniamr.DataFlow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranks != 2 || m.Cores != 4 || m.Flops == 0 || m.Tasks == 0 {
		t.Errorf("metrics = %+v", m)
	}
	if len(m.Checksums) == 0 {
		t.Error("no checksums")
	}
}

func TestFacadeVariantsAgree(t *testing.T) {
	cfg := miniamr.SingleSphere([3]int{2, 1, 1}, tinyScale)
	var ref []float64
	for _, v := range []miniamr.Variant{miniamr.MPIOnly, miniamr.ForkJoin, miniamr.DataFlow} {
		m, err := miniamr.Run(miniamr.RunSpec{
			Nodes: 1, RanksPerNode: 2, CoresPerRank: 2,
			Net: miniamr.NoNet(), Cfg: cfg, Variant: v,
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		var flat []float64
		for _, ck := range m.Checksums {
			flat = append(flat, ck...)
		}
		if ref == nil {
			ref = flat
			continue
		}
		if len(flat) != len(ref) {
			t.Fatalf("%s: checksum count mismatch", v)
		}
		for i := range ref {
			if math.Float64bits(flat[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum %d differs", v, i)
			}
		}
	}
}

func TestFacadeTraceRecorder(t *testing.T) {
	rec := miniamr.NewTraceRecorder()
	cfg := miniamr.FourSpheres([3]int{2, 1, 1}, tinyScale)
	if _, err := miniamr.Run(miniamr.RunSpec{
		Nodes: 1, RanksPerNode: 2, CoresPerRank: 1,
		Net: miniamr.NoNet(), Cfg: cfg, Variant: miniamr.MPIOnly, Recorder: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("recorder captured nothing")
	}
}

func TestFacadeWeakMesh(t *testing.T) {
	root, err := miniamr.WeakMesh(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if root[0]*root[1]*root[2] != 32 {
		t.Errorf("WeakMesh(4,8) = %v", root)
	}
}

func TestFacadeObjectTypes(t *testing.T) {
	o := miniamr.Object{Type: miniamr.CylinderZSurface, Size: [3]float64{0.1, 0.1, 0.4},
		Center: [3]float64{0.5, 0.5, 0.5}}
	if err := o.Validate(); err != nil {
		t.Errorf("cylinder object invalid: %v", err)
	}
}

// ExampleRun demonstrates the minimal end-to-end API. (The printed metrics
// depend on the host, so the example does not assert output.)
func ExampleRun() {
	cfg := miniamr.FourSpheres([3]int{2, 2, 1}, miniamr.Scale{})
	miniamr.DataFlowOptions(&cfg)
	m, err := miniamr.Run(miniamr.RunSpec{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 4,
		Net: miniamr.DefaultNet(), Cfg: cfg, Variant: miniamr.DataFlow,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Ranks > 0)
}
