# Developer entry points. `make check` is the extended verify recorded in
# ROADMAP.md: vet + formatting + repo-specific lint + tier-1 build/tests +
# race tests on the concurrency-bearing packages of the message path.

GO ?= go
RACE_PKGS := ./internal/mpi ./internal/task ./internal/tampi ./internal/membuf \
	./internal/simnet ./internal/amr/app

.PHONY: test vet fmt-check lint sanitize race check bench

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# amrlint enforces the repo's ownership and collective invariants
# (leaselint, reqlint, deplint, collectivelint); exits non-zero on findings.
lint:
	$(GO) run ./cmd/amrlint ./...

# amrsan: the seeded-violation corpus plus full driver runs with the
# runtime sanitizer forced on (AMRSAN=1), which must stay clean.
sanitize:
	$(GO) test ./internal/sanitize
	AMRSAN=1 $(GO) test ./internal/amr/app

race:
	$(GO) test -race $(RACE_PKGS)

check: vet fmt-check lint test sanitize race

# Allocation benchmarks of the pooled message path (ReportAllocs is on).
bench:
	$(GO) test -run xxx -bench 'BenchmarkPingPong|BenchmarkGhostExchange' -benchtime=2000x ./internal/mpi ./internal/amr/app
