# Developer entry points. `make check` is the extended verify recorded in
# ROADMAP.md: vet + formatting + repo-specific lint + tier-1 build/tests +
# race tests on the concurrency-bearing packages of the message path.

GO ?= go
RACE_PKGS := ./internal/mpi ./internal/task ./internal/tampi ./internal/membuf \
	./internal/simnet ./internal/amr/app ./internal/driver ./internal/hydro \
	./internal/harness ./internal/wire

GOLDEN_DIR := internal/analysis/testdata/golden
PERF_GOLDEN_DIR := $(GOLDEN_DIR)/perf
GRAPH_PKGS := ./internal/amr/app ./internal/hydro

.PHONY: test vet fmt-check lint graph golden perf sanitize chaos race transport check bench

test:
	$(GO) build ./...
	$(GO) test ./...

# Alongside the default vet suite, explicitly enable the three analyzers
# that matter most to the concurrency substrate: copylocks (a copied
# mutex is a silently-broken lock), lostcancel (leaked contexts) and
# unusedresult (dropped errors from pure functions).
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -lostcancel -unusedresult ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# amrlint enforces the repo's ownership, collective, task-graph,
# concurrency and determinism invariants (leaselint, reqlint, deplint,
# collectivelint, graphlint, perflint, conclint, determlint);
# amrgraph -check diffs the extracted
# driver DAGs and amrperf -check the static performance profiles against
# the committed goldens. All exit non-zero on findings or drift.
lint:
	$(GO) run ./cmd/amrlint ./...
	$(GO) run ./cmd/amrgraph -check $(GOLDEN_DIR) $(GRAPH_PKGS)
	$(GO) run ./cmd/amrperf -check $(PERF_GOLDEN_DIR) $(GRAPH_PKGS)

# Render the driver task graphs as DOT under build/graphs (pipe through
# `dot -Tsvg` to visualise).
graph:
	$(GO) run ./cmd/amrgraph -format dot -o build/graphs $(GRAPH_PKGS)

# Refresh the committed golden text graphs and performance profiles
# after an intentional change to a driver pipeline or the cost presets.
golden:
	$(GO) run ./cmd/amrgraph -update $(GOLDEN_DIR) $(GRAPH_PKGS)
	$(GO) run ./cmd/amrperf -update $(PERF_GOLDEN_DIR) $(GRAPH_PKGS)

# Static performance model: diff the per-driver profiles (critical path,
# concurrency width, comm volume) against the committed goldens, audit
# the //amr:hot allocation pins against the compiler's escape analysis,
# and emit the machine-readable JSON profiles under build/perf (the CI
# artifact).
perf:
	$(GO) run ./cmd/amrperf -escape -check $(PERF_GOLDEN_DIR) ./...
	$(GO) run ./cmd/amrperf -format json -o build/perf $(GRAPH_PKGS)

# amrsan: the seeded-violation corpus plus full driver runs with the
# runtime sanitizer forced on (AMRSAN=1), which must stay clean.
sanitize:
	$(GO) test ./internal/sanitize
	AMRSAN=1 $(GO) test ./internal/amr/app ./internal/hydro

# chaos: the seeded fault-injection suite — injector determinism, MPI
# matching under drops/duplicates/spikes, watchdog fault-awareness, and
# the per-driver bit-identical-checksum regression.
chaos:
	$(GO) test -run 'Chaos|Fault|Partition|Stall|Cut' ./internal/simnet ./internal/mpi \
		./internal/sanitize ./internal/tampi ./internal/harness ./internal/hydro

race:
	$(GO) test -race $(RACE_PKGS)

# transport: the wire-transport proof chain under the race detector —
# the conformance suite over both fabrics (channel and real loopback
# TCP), the fuzz seed corpora of the wire codec, the transport
# equivalence property, and the cross-process oracle (2 OS processes,
# bit-identical checksums and fault logs vs the in-process run).
transport:
	$(GO) test -race -run 'Conformance|Fuzz|ReadFrame|Equivalence' ./internal/wire ./internal/mpi
	$(GO) test -race -run 'CrossProcess|MultiProc' ./internal/harness

check: vet fmt-check lint test perf sanitize chaos race transport

# Performance trajectory: the allocation benchmarks of the pooled message
# path plus end-to-end driver runs of both applications, recorded as one
# machine-readable JSON document (BENCH_<n>.json, committed per PR) and
# gated against the previous PR's document: any allocs/op increase fails,
# and a >10% ns/op slowdown fails when both documents carry sampled
# medians (benchjson records median-of-5; a legacy single-sample baseline
# makes ns/op informational — one sample of a handoff-bound benchmark is
# noise in either direction).
BENCH_BASE := BENCH_9.json
BENCH_OUT := BENCH_10.json
bench:
	$(GO) run ./cmd/benchjson -benchtime 20000x -o $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_OUT)
