// Package miniamr is a pure-Go reproduction of the system described in
// "Towards Data-Flow Parallelization for Adaptive Mesh Refinement
// Applications" (Sala, Rico, Beltran — IEEE CLUSTER 2020): the miniAMR
// proxy application in three parallelisation variants (MPI-only,
// MPI+OpenMP fork-join, and the paper's TAMPI+OmpSs-2 data-flow
// taskification), running on a simulated cluster inside one process.
//
// The package is a facade over the implementation packages:
//
//   - a message-passing library with MPI semantics (internal/mpi),
//   - a data-flow tasking runtime with OmpSs-2 features (internal/task),
//   - a Task-Aware MPI layer binding requests to tasks (internal/tampi),
//   - the full AMR application: blocks, objects, refinement with 2:1
//     balance, RCB load balancing, ghost exchanges, stencil, checksums
//     (internal/amr/...),
//   - and the experiment harness regenerating the paper's tables and
//     figures (internal/harness).
//
// Quick start:
//
//	cfg := miniamr.FourSpheres([3]int{2, 2, 1}, miniamr.Scale{})
//	m, err := miniamr.Run(miniamr.RunSpec{
//	    Nodes: 2, RanksPerNode: 1, CoresPerRank: 4,
//	    Net: miniamr.DefaultNet(), Cfg: cfg, Variant: miniamr.DataFlow,
//	})
//
// See the examples directory and cmd/experiments for complete programs.
package miniamr

import (
	"miniamr/internal/amr/app"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/object"
	"miniamr/internal/harness"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

// Core configuration and result types of a simulation.
type (
	// Config describes one simulation (mesh, loop, objects, options).
	Config = app.Config
	// Result is one rank's outcome.
	Result = app.Result
	// BlockSize is a block's interior cell extent.
	BlockSize = grid.Size
	// Object is a moving refinement-driving body.
	Object = object.Object
	// ObjectType enumerates the object geometries.
	ObjectType = object.Type
)

// Object geometry types (the reference 16 plus cylinder extensions).
const (
	RectangleSurface = object.RectangleSurface
	RectangleSolid   = object.RectangleSolid
	SpheroidSurface  = object.SpheroidSurface
	SpheroidSolid    = object.SpheroidSolid
	CylinderXSurface = object.CylinderXSurface
	CylinderYSurface = object.CylinderYSurface
	CylinderZSurface = object.CylinderZSurface
)

// Experiment harness types.
type (
	// RunSpec describes one measured execution on a virtual cluster.
	RunSpec = harness.RunSpec
	// Metrics aggregates a run across ranks.
	Metrics = harness.Metrics
	// Variant selects a parallelisation strategy.
	Variant = harness.Variant
	// Scale shrinks the paper's inputs to a host's capacity.
	Scale = harness.Scale
	// Options scales a whole experiment.
	Options = harness.Options
	// NetModel is the simulated interconnect cost model.
	NetModel = simnet.Model
	// TraceRecorder captures execution timelines.
	TraceRecorder = trace.Recorder
)

// The three variants the paper evaluates.
const (
	MPIOnly  = harness.MPIOnly
	ForkJoin = harness.ForkJoin
	DataFlow = harness.DataFlow
)

// Run executes a RunSpec and aggregates metrics across ranks.
func Run(spec RunSpec) (Metrics, error) { return harness.Run(spec) }

// SingleSphere builds the paper's Table I input: one big sphere entering
// the mesh from a lower corner.
func SingleSphere(root [3]int, sc Scale) Config { return harness.SingleSphere(root, sc) }

// FourSpheres builds the paper's scaling input: four spheres crossing the
// mesh in opposite directions.
func FourSpheres(root [3]int, sc Scale) Config { return harness.FourSpheres(root, sc) }

// WeakMesh computes the root-block arrangement for a weak-scaling point.
func WeakMesh(nodes, blocksPerNode int) ([3]int, error) {
	return harness.WeakMesh(nodes, blocksPerNode)
}

// DataFlowOptions applies the paper's preferred TAMPI+OSS settings.
func DataFlowOptions(cfg *Config) { harness.DataFlowOptions(cfg) }

// DefaultNet returns the harness's interconnect model; NoNet charges
// nothing (useful for correctness runs).
func DefaultNet() NetModel { return simnet.Default() }

// NoNet returns the free interconnect model.
func NoNet() NetModel { return simnet.None() }

// NewTraceRecorder creates a recorder to pass in RunSpec.Recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
