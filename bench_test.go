// Benchmarks regenerating the paper's tables and figures, one benchmark
// per table or figure (see DESIGN.md's per-experiment index). Each
// sub-benchmark executes one experiment configuration per iteration on a
// virtual cluster and reports throughput as well as the wall-clock shape
// metrics the paper discusses.
//
// Scales are reduced so the full suite completes in minutes on a laptop;
// cmd/experiments runs the same experiments at configurable scales and
// EXPERIMENTS.md records the paper-versus-measured comparison.
package miniamr

import (
	"fmt"
	"testing"

	"miniamr/internal/harness"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

// benchScale keeps one experiment iteration around a second.
func benchScale() harness.Scale {
	return harness.Scale{
		BlockCells: 8, Vars: 8, Timesteps: 3, StagesPerTimestep: 4, MaxLevel: 2,
	}
}

func benchOptions() harness.Options {
	net := simnet.Default()
	return harness.Options{
		Nodes:        2,
		CoresPerNode: 4,
		Net:          &net,
		Scale:        benchScale(),
	}
}

// reportRun standardises the per-run metrics: GFLOPS plus the refinement
// share the paper tracks.
func reportRun(b *testing.B, m harness.Metrics) {
	b.ReportMetric(m.GFLOPS, "GFLOPS")
	if m.Total > 0 {
		b.ReportMetric(100*m.Refine.Seconds()/m.Total.Seconds(), "%refine")
	}
}

// BenchmarkTable1RanksPerNode regenerates Table I: the hybrid variants'
// execution time while varying ranks per node on a fixed node count
// (single-sphere input).
func BenchmarkTable1RanksPerNode(b *testing.B) {
	opt := benchOptions()
	root := harness.Factor3(opt.Nodes * opt.CoresPerNode)
	for _, variant := range []harness.Variant{harness.ForkJoin, harness.DataFlow} {
		for rpn := 1; rpn <= opt.CoresPerNode; rpn *= 2 {
			rpn := rpn
			b.Run(fmt.Sprintf("%s/rpn=%d", variant, rpn), func(b *testing.B) {
				cfg := harness.SingleSphere(root, opt.Scale)
				if variant == harness.DataFlow {
					cfg.SendFaces = true
					cfg.SeparateBuffers = true
				}
				var last harness.Metrics
				for i := 0; i < b.N; i++ {
					m, err := harness.Run(harness.RunSpec{
						Nodes: opt.Nodes, RanksPerNode: rpn,
						CoresPerRank: opt.CoresPerNode / rpn,
						Net:          *opt.Net, Cfg: cfg, Variant: variant,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkTable2CommTasks regenerates Table II: TAMPI+OSS non-refinement
// time versus --max_comm_tasks (four-spheres input, --send_faces).
func BenchmarkTable2CommTasks(b *testing.B) {
	opt := benchOptions()
	root := harness.Factor3(opt.Nodes * opt.CoresPerNode)
	for _, tasks := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("tasks=%d", tasks)
		if tasks == 0 {
			name = "tasks=all"
		}
		tasks := tasks
		b.Run(name, func(b *testing.B) {
			cfg := harness.FourSpheres(root, opt.Scale)
			cfg.SendFaces = true
			cfg.SeparateBuffers = true
			cfg.MaxCommTasks = tasks
			cfg.DelayedChecksum = true
			var last harness.Metrics
			for i := 0; i < b.N; i++ {
				m, err := harness.Run(harness.RunSpec{
					Nodes: opt.Nodes, RanksPerNode: 1, CoresPerRank: opt.CoresPerNode,
					Net: *opt.Net, Cfg: cfg, Variant: harness.DataFlow,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportRun(b, last)
			b.ReportMetric(last.NoRefine.Seconds(), "norefine-s")
		})
	}
}

// BenchmarkFig1Trace regenerates the Figure 1-3 trace comparison on two
// nodes and reports the computation/communication overlap that the
// data-flow variant creates.
func BenchmarkFig1Trace(b *testing.B) {
	opt := benchOptions()
	root, err := harness.WeakMesh(2, opt.CoresPerNode)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []harness.Variant{harness.MPIOnly, harness.DataFlow} {
		variant := variant
		b.Run(string(variant), func(b *testing.B) {
			var overlap float64
			var last harness.Metrics
			for i := 0; i < b.N; i++ {
				rec := trace.NewRecorder()
				cfg := harness.FourSpheres(root, opt.Scale)
				spec := harness.RunSpec{Nodes: 2, Net: *opt.Net, Cfg: cfg, Variant: variant, Recorder: rec}
				if variant == harness.MPIOnly {
					spec.RanksPerNode, spec.CoresPerRank = opt.CoresPerNode, 1
				} else {
					spec.RanksPerNode, spec.CoresPerRank = 1, opt.CoresPerNode
					harness.DataFlowOptions(&spec.Cfg)
				}
				m, err := harness.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				last = m
				overlap = trace.ComputeStats(rec.Events()).OverlapTime.Seconds()
			}
			reportRun(b, last)
			b.ReportMetric(overlap, "overlap-s")
		})
	}
}

// BenchmarkFig4WeakScaling regenerates Figure 4's points: every variant at
// each node count of a weak sweep (problem grows with the cluster).
func BenchmarkFig4WeakScaling(b *testing.B) {
	opt := benchOptions()
	for _, variant := range harness.Variants {
		for nodes := 1; nodes <= opt.Nodes; nodes *= 2 {
			variant, nodes := variant, nodes
			b.Run(fmt.Sprintf("%s/nodes=%d", variant, nodes), func(b *testing.B) {
				root, err := harness.WeakMesh(nodes, opt.CoresPerNode)
				if err != nil {
					b.Fatal(err)
				}
				cfg := harness.FourSpheres(root, opt.Scale)
				spec := harness.RunSpec{Nodes: nodes, Net: *opt.Net, Cfg: cfg, Variant: variant}
				if variant == harness.MPIOnly {
					spec.RanksPerNode, spec.CoresPerRank = opt.CoresPerNode, 1
				} else {
					spec.RanksPerNode, spec.CoresPerRank = 1, opt.CoresPerNode
				}
				if variant == harness.DataFlow {
					harness.DataFlowOptions(&spec.Cfg)
				}
				var last harness.Metrics
				for i := 0; i < b.N; i++ {
					m, err := harness.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkFig5StrongScaling regenerates Figure 5's points: a fixed
// problem size across node counts and variants.
func BenchmarkFig5StrongScaling(b *testing.B) {
	opt := benchOptions()
	root, err := harness.WeakMesh(opt.Nodes, opt.CoresPerNode)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range harness.Variants {
		for nodes := 1; nodes <= opt.Nodes; nodes *= 2 {
			variant, nodes := variant, nodes
			b.Run(fmt.Sprintf("%s/nodes=%d", variant, nodes), func(b *testing.B) {
				cfg := harness.FourSpheres(root, opt.Scale)
				spec := harness.RunSpec{Nodes: nodes, Net: *opt.Net, Cfg: cfg, Variant: variant}
				if variant == harness.MPIOnly {
					spec.RanksPerNode, spec.CoresPerRank = opt.CoresPerNode, 1
				} else {
					spec.RanksPerNode, spec.CoresPerRank = 1, opt.CoresPerNode
				}
				if variant == harness.DataFlow {
					harness.DataFlowOptions(&spec.Cfg)
				}
				var last harness.Metrics
				for i := 0; i < b.N; i++ {
					m, err := harness.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkRefinementTaskification is the Section IV-B ablation: the
// taskified refinement phase against a fully sequential one.
func BenchmarkRefinementTaskification(b *testing.B) {
	opt := benchOptions()
	root := harness.Factor3(opt.Nodes * opt.CoresPerNode)
	for _, sequential := range []bool{false, true} {
		name := "taskified"
		if sequential {
			name = "sequential"
		}
		sequential := sequential
		b.Run(name, func(b *testing.B) {
			cfg := harness.FourSpheres(root, opt.Scale)
			harness.DataFlowOptions(&cfg)
			cfg.SequentialRefinement = sequential
			var last harness.Metrics
			for i := 0; i < b.N; i++ {
				m, err := harness.Run(harness.RunSpec{
					Nodes: opt.Nodes, RanksPerNode: 1, CoresPerRank: opt.CoresPerNode,
					Net: *opt.Net, Cfg: cfg, Variant: harness.DataFlow,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportRun(b, last)
			b.ReportMetric(last.Refine.Seconds(), "refine-s")
		})
	}
}

// BenchmarkSchedulerLocality is the Section V-B ablation: the
// immediate-successor scheduling policy on and off.
func BenchmarkSchedulerLocality(b *testing.B) {
	opt := benchOptions()
	root := harness.Factor3(opt.Nodes * opt.CoresPerNode)
	for _, disabled := range []bool{false, true} {
		name := "immediate-successor"
		if disabled {
			name = "queue-only"
		}
		disabled := disabled
		b.Run(name, func(b *testing.B) {
			cfg := harness.FourSpheres(root, opt.Scale)
			harness.DataFlowOptions(&cfg)
			cfg.DisableImmediateSuccessor = disabled
			var last harness.Metrics
			for i := 0; i < b.N; i++ {
				m, err := harness.Run(harness.RunSpec{
					Nodes: opt.Nodes, RanksPerNode: 1, CoresPerRank: opt.CoresPerNode,
					Net: *opt.Net, Cfg: cfg, Variant: harness.DataFlow,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportRun(b, last)
		})
	}
}
