// Restart demonstrates checkpoint/restart: the first half of a simulation
// runs and checkpoints, a second invocation resumes it — with a different
// parallelisation variant — and the final checksums are compared against
// an uninterrupted reference run. The restored run matches bit for bit.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"miniamr"
)

func main() {
	dir, err := os.MkdirTemp("", "miniamr-restart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pattern := filepath.Join(dir, "ck-%d.bin")

	const (
		ranks     = 2
		timesteps = 4
	)
	base := func() miniamr.Config {
		cfg := miniamr.FourSpheres([3]int{2, 2, 1}, miniamr.Scale{
			Timesteps: timesteps, StagesPerTimestep: 4,
		})
		return cfg
	}
	spec := func(cfg miniamr.Config, v miniamr.Variant) miniamr.RunSpec {
		return miniamr.RunSpec{
			Nodes: 1, RanksPerNode: ranks, CoresPerRank: 2,
			Net: miniamr.NoNet(), Cfg: cfg, Variant: v,
		}
	}

	// Reference: the whole horizon in one go, MPI-only.
	ref, err := miniamr.Run(spec(base(), miniamr.MPIOnly))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference run:   %d timesteps, %d checksums\n", timesteps, len(ref.Checksums))

	// First half + checkpoint.
	half := base()
	half.Timesteps = timesteps / 2
	half.CheckpointFile = pattern
	if _, err := miniamr.Run(spec(half, miniamr.MPIOnly)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed at: timestep %d -> %s\n", half.Timesteps, pattern)

	// Resume the full horizon — with the data-flow variant this time.
	resumed := base()
	resumed.RestoreFile = pattern
	miniamr.DataFlowOptions(&resumed)
	res, err := miniamr.Run(spec(resumed, miniamr.DataFlow))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run:     %d checksums after restore (variant switched to data-flow)\n", len(res.Checksums))

	// The final checksums must agree bit for bit.
	want := ref.Checksums[len(ref.Checksums)-1]
	got := res.Checksums[len(res.Checksums)-1]
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			log.Fatalf("variable %d diverged: %v vs %v", v, got[v], want[v])
		}
	}
	fmt.Println("final checksums: bit-identical to the uninterrupted run")
}
