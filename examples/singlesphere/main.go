// Singlesphere compares the three parallelisation variants on the paper's
// Table I input: a big sphere entering the mesh from a lower corner. It
// prints a Table-I-style summary (total / refinement / non-refinement
// time) plus the checksum agreement check across variants.
package main

import (
	"fmt"
	"log"
	"math"

	"miniamr"
)

func main() {
	const (
		nodes        = 2
		coresPerNode = 4
	)
	// One root block per core, the paper's rule for comparable meshes.
	cfg := miniamr.SingleSphere([3]int{4, 2, 1}, miniamr.Scale{
		Timesteps:         4,
		StagesPerTimestep: 6,
	})

	type row struct {
		name string
		m    miniamr.Metrics
	}
	var rows []row

	// MPI-only: one rank per core.
	m, err := miniamr.Run(miniamr.RunSpec{
		Nodes: nodes, RanksPerNode: coresPerNode, CoresPerRank: 1,
		Net: miniamr.DefaultNet(), Cfg: cfg, Variant: miniamr.MPIOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"MPI-only", m})

	// Hybrid variants: one rank per node with all its cores.
	for _, v := range []miniamr.Variant{miniamr.ForkJoin, miniamr.DataFlow} {
		c := cfg
		if v == miniamr.DataFlow {
			miniamr.DataFlowOptions(&c)
		}
		m, err := miniamr.Run(miniamr.RunSpec{
			Nodes: nodes, RanksPerNode: 1, CoresPerRank: coresPerNode,
			Net: miniamr.DefaultNet(), Cfg: c, Variant: v,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{string(v), m})
	}

	fmt.Printf("%-10s %10s %10s %10s %10s\n", "variant", "total(s)", "refine(s)", "norefine(s)", "GFLOPS")
	for _, r := range rows {
		fmt.Printf("%-10s %10.3f %10.3f %10.3f %10.3f\n", r.name,
			r.m.Total.Seconds(), r.m.Refine.Seconds(), r.m.NoRefine.Seconds(), r.m.GFLOPS)
	}

	// All variants computed the same physics: compare final checksums.
	ref := rows[0].m.Checksums
	for _, r := range rows[1:] {
		if len(r.m.Checksums) != len(ref) {
			log.Fatalf("%s validated %d checksums, MPI-only %d", r.name, len(r.m.Checksums), len(ref))
		}
		for i := range ref {
			for v := range ref[i] {
				if rel := math.Abs(r.m.Checksums[i][v]-ref[i][v]) / math.Max(math.Abs(ref[i][v]), 1e-12); rel > 1e-9 {
					log.Fatalf("%s checksum %d/%d differs from MPI-only by %g", r.name, i, v, rel)
				}
			}
		}
	}
	fmt.Println("checksums agree across all variants")
}
