// Overlap demonstrates the effect the paper's Figures 1-3 visualise: the
// data-flow taskification overlaps communication with computation while
// the MPI-only version serialises them behind MPI_Waitany. It runs both
// variants with tracing enabled, prints ASCII timelines, and compares
// overlap and idle statistics. The trace CSVs are written next to the
// binary for inspection with cmd/traceview.
package main

import (
	"fmt"
	"log"
	"os"

	"miniamr"
	"miniamr/internal/trace"
)

func main() {
	const (
		nodes        = 2
		coresPerNode = 4
	)
	root, err := miniamr.WeakMesh(nodes, coresPerNode)
	if err != nil {
		log.Fatal(err)
	}
	sc := miniamr.Scale{Timesteps: 3, StagesPerTimestep: 4}

	run := func(v miniamr.Variant) (miniamr.Metrics, *miniamr.TraceRecorder) {
		rec := miniamr.NewTraceRecorder()
		cfg := miniamr.FourSpheres(root, sc)
		spec := miniamr.RunSpec{
			Nodes: nodes, Net: miniamr.DefaultNet(), Cfg: cfg,
			Variant: v, Recorder: rec,
		}
		if v == miniamr.MPIOnly {
			spec.RanksPerNode, spec.CoresPerRank = coresPerNode, 1
		} else {
			spec.RanksPerNode, spec.CoresPerRank = 1, coresPerNode
			miniamr.DataFlowOptions(&spec.Cfg)
		}
		m, err := miniamr.Run(spec)
		if err != nil {
			log.Fatalf("%s: %v", v, err)
		}
		return m, rec
	}

	mpiM, mpiRec := run(miniamr.MPIOnly)
	dfM, dfRec := run(miniamr.DataFlow)

	fmt.Println("== MPI-only timeline (ranks serialise communication behind Waitany) ==")
	fmt.Print(trace.Render(mpiRec.Events(), 100))
	fmt.Println("\n== TAMPI+OSS timeline (tasks from all phases interleave) ==")
	fmt.Print(trace.Render(dfRec.Events(), 100))

	mpiStats := trace.ComputeStats(mpiRec.Events())
	dfStats := trace.ComputeStats(dfRec.Events())
	fmt.Printf("\n%-32s %12s %12s\n", "", "MPI-only", "TAMPI+OSS")
	fmt.Printf("%-32s %12.3f %12.3f\n", "total time (s)", mpiM.Total.Seconds(), dfM.Total.Seconds())
	fmt.Printf("%-32s %12.3f %12.3f\n", "non-refinement time (s)", mpiM.NoRefine.Seconds(), dfM.NoRefine.Seconds())
	fmt.Printf("%-32s %12.3f %12.3f\n", "comp/comm overlap (s)", mpiStats.OverlapTime.Seconds(), dfStats.OverlapTime.Seconds())
	fmt.Printf("%-32s %12.1f %12.1f\n", "utilization (%)", 100*mpiStats.Utilization, 100*dfStats.Utilization)
	if dfM.NoRefine > 0 {
		fmt.Printf("non-refinement speedup: %.2fx\n", mpiM.NoRefine.Seconds()/dfM.NoRefine.Seconds())
	}

	for _, out := range []struct {
		name string
		rec  *miniamr.TraceRecorder
	}{
		{"trace-mpionly.csv", mpiRec},
		{"trace-dataflow.csv", dfRec},
	} {
		name, rec := out.name, out.rec
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteCSV(f, rec.Events()); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", name)
	}
}
