// Fourspheres runs a miniature weak-scaling sweep on the paper's
// four-spheres input: the mesh grows with the virtual node count (one
// block per MPI-only core, doubling one direction per node doubling) and
// the throughput and efficiency of all three variants are reported —
// the shape of the paper's Figure 4.
package main

import (
	"fmt"
	"log"

	"miniamr"
)

func main() {
	const (
		maxNodes     = 4
		coresPerNode = 4
	)
	sc := miniamr.Scale{Timesteps: 4, StagesPerTimestep: 4}

	type point struct {
		nodes int
		m     miniamr.Metrics
	}
	series := map[miniamr.Variant][]point{}
	variants := []miniamr.Variant{miniamr.MPIOnly, miniamr.ForkJoin, miniamr.DataFlow}

	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		root, err := miniamr.WeakMesh(nodes, coresPerNode)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range variants {
			cfg := miniamr.FourSpheres(root, sc)
			spec := miniamr.RunSpec{
				Nodes: nodes, Net: miniamr.DefaultNet(), Cfg: cfg, Variant: v,
			}
			if v == miniamr.MPIOnly {
				spec.RanksPerNode, spec.CoresPerRank = coresPerNode, 1
			} else {
				spec.RanksPerNode, spec.CoresPerRank = 1, coresPerNode
			}
			if v == miniamr.DataFlow {
				miniamr.DataFlowOptions(&spec.Cfg)
			}
			m, err := miniamr.Run(spec)
			if err != nil {
				log.Fatalf("%s on %d nodes: %v", v, nodes, err)
			}
			series[v] = append(series[v], point{nodes, m})
		}
	}

	fmt.Printf("%-8s", "nodes")
	for _, v := range variants {
		fmt.Printf(" | %-8s GFLOPS eff", v)
	}
	fmt.Println()
	for i := range series[miniamr.MPIOnly] {
		fmt.Printf("%-8d", series[miniamr.MPIOnly][i].nodes)
		for _, v := range variants {
			p := series[v][i]
			base := series[v][0]
			eff := p.m.GFLOPS / (base.m.GFLOPS * float64(p.nodes))
			fmt.Printf(" | %15.3f %5.2f", p.m.GFLOPS, eff)
		}
		fmt.Println()
	}
}
