// Quickstart: run the four-spheres problem with the paper's data-flow
// variant on a small virtual cluster and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"miniamr"
)

func main() {
	// A 2x2x1 root mesh of 8^3-cell blocks, 8 variables, refined up to two
	// levels around four moving spheres.
	cfg := miniamr.FourSpheres([3]int{2, 2, 1}, miniamr.Scale{
		Timesteps:         4,
		StagesPerTimestep: 4,
	})
	// The paper's preferred TAMPI+OmpSs-2 options: per-face messages capped
	// at eight communication tasks per neighbour and direction, separate
	// buffers per direction, delayed checksum validation.
	miniamr.DataFlowOptions(&cfg)

	// Two virtual nodes, one rank per node, four cores per rank, with the
	// default simulated interconnect (inter-node messages cost latency and
	// bandwidth; intra-node ones are cheap).
	m, err := miniamr.Run(miniamr.RunSpec{
		Nodes:        2,
		RanksPerNode: 1,
		CoresPerRank: 4,
		Net:          miniamr.DefaultNet(),
		Cfg:          cfg,
		Variant:      miniamr.DataFlow,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d ranks / %d cores\n", m.Ranks, m.Cores)
	fmt.Printf("total time:      %v\n", m.Total)
	fmt.Printf("refinement time: %v\n", m.Refine)
	fmt.Printf("throughput:      %.3f GFLOPS\n", m.GFLOPS)
	fmt.Printf("final blocks:    %d\n", m.FinalBlocks)
	fmt.Printf("tasks spawned:   %d\n", m.Tasks)
	fmt.Printf("checksums:       %d validated\n", len(m.Checksums))
}
