module miniamr

go 1.22
