// Command traceview renders an execution trace captured by the miniamr
// tool (the -trace flag) as an ASCII timeline with summary statistics —
// the reproduction's Paraver.
//
//	miniamr -variant dataflow -trace run.csv
//	traceview -in run.csv -width 120
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"miniamr/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "trace CSV file (required)")
		width  = flag.Int("width", 100, "timeline width in columns")
		labels = flag.Bool("labels", true, "print per-label time breakdown")
		chrome = flag.String("chrome", "", "also convert the trace to Chrome Trace Event JSON at this path")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceview: -in is required")
		os.Exit(2)
	}
	if err := view(*in, *width, *labels, *chrome); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func view(path string, width int, labels bool, chrome string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Print(trace.Render(events, width))
	if chrome != "" {
		out, err := os.Create(chrome)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := trace.WriteChromeTrace(out, events); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing)\n", chrome)
	}

	st := trace.ComputeStats(events)
	fmt.Printf("\nevents:       %d\n", len(events))
	fmt.Printf("span:         %v over %d lanes\n", st.Span, st.Lanes)
	fmt.Printf("utilization:  %.1f%%\n", 100*st.Utilization)
	fmt.Printf("comp time:    %v\n", st.ByPhase["comp"])
	fmt.Printf("comm time:    %v\n", st.ByPhase["comm"])
	fmt.Printf("overlap:      %v\n", st.OverlapTime)
	fmt.Printf("max idle gap: %v\n", st.MaxIdleGap)

	if labels {
		fmt.Println("\ntime per label:")
		type kv struct {
			label string
			d     time.Duration
		}
		var rows []kv
		for label, d := range st.ByLabel {
			rows = append(rows, kv{label, d})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
		for _, r := range rows {
			fmt.Printf("  %-18s %12v\n", r.label, r.d)
		}
	}
	return nil
}
