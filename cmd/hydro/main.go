// Command hydro runs the second application of the reproduction — a 2D
// compressible Euler solver with dimension-split Godunov sweeps — on a
// virtual cluster, in any of the three parallelisation variants. It is
// the port the paper performs for HYDRO: the same driver skeleton as
// miniAMR, a different physics.
//
// Examples:
//
//	hydro -variant dataflow -nodes 2 -ranks-per-node 1 -cores-per-rank 4 \
//	      -nx 128 -ny 128 -tiles-x 8 -tiles-y 8 -timesteps 20
//	hydro -variant mpionly -nodes 2 -ranks-per-node 4 -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"miniamr/internal/harness"
	"miniamr/internal/hydro"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

func main() {
	// A multi-process parent re-executes this binary as a wire child; the
	// child role must take over before flag parsing sees the child's argv.
	harness.MaybeRunWireChild()
	var (
		variant      = flag.String("variant", "dataflow", "parallelisation variant: mpionly, forkjoin or dataflow")
		nodes        = flag.Int("nodes", 2, "virtual node count")
		ranksPerNode = flag.Int("ranks-per-node", 1, "MPI ranks per node")
		coresPerRank = flag.Int("cores-per-rank", 4, "cores per rank (workers of hybrid variants)")

		nx         = flag.Int("nx", 96, "global interior cells in x")
		ny         = flag.Int("ny", 96, "global interior cells in y")
		tilesX     = flag.Int("tiles-x", 8, "tiles in x (at least 2, divides nx)")
		tilesY     = flag.Int("tiles-y", 8, "tiles in y (at least 2, divides ny)")
		timesteps  = flag.Int("timesteps", 10, "number of timesteps (two sweep stages each)")
		ckEvery    = flag.Int("checksum-every", 2, "validate checksums every N stages (negative: off)")
		cfl        = flag.Float64("cfl", 0.4, "CFL safety factor")
		gamma      = flag.Float64("gamma", 1.4, "ideal-gas adiabatic index")
		sepBufs    = flag.Bool("separate-buffers", false, "per-direction buffer-section keys in the data-flow variant")
		blockTampi = flag.Bool("blocking-tampi", false, "use blocking TAMPI operations in communication tasks")

		netModel    = flag.String("net", "default", "interconnect model: none, default or slow")
		tracePath   = flag.String("trace", "", "write an execution trace CSV to this path")
		traceWidth  = flag.Int("trace-width", 100, "columns of the printed timeline (with -trace)")
		sanitizeOn  = flag.Bool("sanitize", false, "run under the amrsan runtime sanitizer (also AMRSAN=1); findings go to stderr and exit status 1")
		chaosOn     = flag.Bool("chaos", false, "inject a seeded fault schedule and run the MPI layer's retransmit/ack path")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed of the fault schedule (with -chaos)")
		ranksRemote = flag.Int("ranks-remote", 0, "split the world across this many OS processes connected by the TCP wire transport (0: one process; incompatible with -trace and -sanitize)")
	)
	flag.Parse()

	cfg := hydro.Config{
		NX: *nx, NY: *ny,
		TilesX: *tilesX, TilesY: *tilesY,
		Timesteps:       *timesteps,
		ChecksumEvery:   *ckEvery,
		CFL:             *cfl,
		Gamma:           *gamma,
		SeparateBuffers: *sepBufs,
		BlockingTAMPI:   *blockTampi,
	}

	var net simnet.Model
	switch *netModel {
	case "none":
		net = simnet.None()
	case "default":
		net = simnet.Default()
	case "slow":
		net = simnet.Slow()
	default:
		fmt.Fprintf(os.Stderr, "hydro: unknown net model %q (want none, default or slow)\n", *netModel)
		os.Exit(1)
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder()
	}

	spec := harness.RunSpec{
		Nodes: *nodes, RanksPerNode: *ranksPerNode, CoresPerRank: *coresPerRank,
		Net: net, Job: hydro.Job(cfg), Variant: harness.Variant(*variant),
		Recorder: rec, Sanitize: *sanitizeOn, Procs: *ranksRemote,
	}
	if *chaosOn {
		faults := simnet.DefaultFaults(*chaosSeed)
		spec.Chaos = &faults
	}
	if err := run(spec, cfg, rec, *tracePath, *traceWidth, *chaosOn, *chaosSeed); err != nil {
		fmt.Fprintln(os.Stderr, "hydro:", err)
		os.Exit(1)
	}
}

func run(spec harness.RunSpec, cfg hydro.Config, rec *trace.Recorder, tracePath string, traceWidth int, chaos bool, chaosSeed uint64) error {
	m, err := harness.Run(spec)
	if err != nil {
		return err
	}

	fmt.Printf("variant:           %s\n", spec.Variant)
	fmt.Printf("cluster:           %d nodes x %d ranks x %d cores (%d ranks, %d cores)\n",
		spec.Nodes, spec.RanksPerNode, spec.CoresPerRank, m.Ranks, m.Cores)
	if spec.Procs > 1 {
		fmt.Printf("processes:         %d (TCP wire transport)\n", spec.Procs)
	}
	fmt.Printf("grid:              %dx%d cells in %dx%d tiles, %d timesteps\n",
		cfg.NX, cfg.NY, cfg.TilesX, cfg.TilesY, cfg.Timesteps)
	fmt.Printf("total time:        %.3fs\n", m.Total.Seconds())
	fmt.Printf("sweep flops:       %d (%.3f GFLOPS)\n", m.Flops, m.GFLOPS)
	fmt.Printf("tiles:             %d\n", m.FinalBlocks)
	if m.Tasks > 0 {
		fmt.Printf("tasks spawned:     %d\n", m.Tasks)
	}
	fmt.Printf("checksums passed:  %d\n", len(m.Checksums))
	fmt.Printf("messages sent:     %d (%.2f MB total)\n", m.Messages, float64(m.CommBytes)/1e6)
	fmt.Printf("buffer arena:      %d gets, %.1f%% hit rate, %d live, %d heap allocs\n",
		m.Arena.Gets, 100*m.Arena.HitRate(), m.Arena.Live, m.HeapAllocs)
	if chaos {
		fmt.Printf("faults injected:   %d (seed %d): %s\n", m.Faults.Total(), chaosSeed, m.Faults)
		fmt.Printf("fault recovery:    %d retransmits, %d drops recovered, %d duplicates discarded, %d reordered, %d abandoned\n",
			m.Chaos.Retransmits, m.Chaos.Recovered, m.Chaos.DupsDiscarded, m.Chaos.Reordered, m.Chaos.Abandoned)
	}

	if rec != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, rec.Events()); err != nil {
			return err
		}
		fmt.Printf("trace:             %d events -> %s\n", rec.Len(), tracePath)
		fmt.Print(trace.Render(rec.Events(), traceWidth))
	}
	if m.Sanitizer != nil {
		if len(m.Sanitizer) == 0 {
			fmt.Printf("sanitizer:         clean (0 findings)\n")
		} else {
			for _, r := range m.Sanitizer {
				fmt.Fprintln(os.Stderr, r)
			}
			return fmt.Errorf("sanitizer reported %d finding(s)", len(m.Sanitizer))
		}
	}
	return nil
}
