// Command miniamr runs one AMR simulation on a virtual cluster, in any of
// the three parallelisation variants the paper evaluates. Flags mirror the
// miniAMR options the paper discusses plus the reproduction's cluster
// controls.
//
// Examples:
//
//	miniamr -variant dataflow -nodes 2 -ranks-per-node 1 -cores-per-rank 4 \
//	        -input four-spheres -timesteps 6 -stages 6
//	miniamr -variant mpionly -nodes 2 -ranks-per-node 4 -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"miniamr/internal/amr/app"
	"miniamr/internal/harness"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

func main() {
	// A multi-process parent re-executes this binary as a wire child; the
	// child role must take over before flag parsing sees the child's argv.
	harness.MaybeRunWireChild()
	var (
		variant      = flag.String("variant", "dataflow", "parallelisation variant: mpionly, forkjoin or dataflow")
		nodes        = flag.Int("nodes", 2, "virtual node count")
		ranksPerNode = flag.Int("ranks-per-node", 1, "MPI ranks per node")
		coresPerRank = flag.Int("cores-per-rank", 4, "cores per rank (workers of hybrid variants)")

		input      = flag.String("input", "four-spheres", "problem preset: single-sphere or four-spheres")
		npx        = flag.Int("npx", 0, "root blocks in x (0: derived from the cluster size)")
		npy        = flag.Int("npy", 0, "root blocks in y")
		npz        = flag.Int("npz", 0, "root blocks in z")
		blockCells = flag.Int("block-size", 8, "cells per block edge (even)")
		vars       = flag.Int("vars", 8, "variables per cell")
		commVars   = flag.Int("comm-vars", 0, "variables per communication group (0: all)")
		timesteps  = flag.Int("timesteps", 6, "number of timesteps")
		stages     = flag.Int("stages", 6, "stages per timestep")
		maxLevel   = flag.Int("max-level", 2, "maximum refinement level")

		sendFaces   = flag.Bool("send-faces", false, "one message per face (--send_faces)")
		maxComm     = flag.Int("max-comm-tasks", 0, "cap on communication tasks per neighbour and direction (--max_comm_tasks)")
		sepBufs     = flag.Bool("separate-buffers", false, "per-direction communication buffers (--separate_buffers)")
		delayedCk   = flag.Bool("delayed-checksum", false, "validate the previous checksum stage (OmpSs-2 taskwait with deps)")
		seqRefine   = flag.Bool("sequential-refine", false, "serialise the data-flow refinement phase (ablation)")
		stencil     = flag.Int("stencil", 7, "stencil kernel: 7 or 27 points")
		partition   = flag.String("partitioner", "rcb", "load-balance policy: rcb or sfc")
		fjSchedule  = flag.String("fj-schedule", "static", "fork-join loop schedule: static or dynamic")
		noLB        = flag.Bool("no-load-balance", false, "skip post-refinement load balancing (ablation)")
		blockTampi  = flag.Bool("blocking-tampi", false, "use blocking TAMPI operations in communication tasks")
		uniformRef  = flag.Bool("uniform-refine", false, "refine every block each epoch (--uniform_refine)")
		showMesh    = flag.Bool("show-mesh", false, "print an ASCII slice (z=0.5) of the final mesh")
		checkpoint  = flag.String("checkpoint", "", "write per-rank snapshots at the end (pattern with %d, e.g. ck-%d.bin)")
		restore     = flag.String("restore", "", "resume from per-rank snapshots (pattern with %d)")
		chromeOut   = flag.String("chrome-trace", "", "write the trace in Chrome Trace Event JSON to this path (with -trace or alone)")
		netModel    = flag.String("net", "default", "interconnect model: none, default or slow")
		tracePath   = flag.String("trace", "", "write an execution trace CSV to this path")
		traceWidth  = flag.Int("trace-width", 100, "columns of the printed timeline (with -trace)")
		sanitizeOn  = flag.Bool("sanitize", false, "run under the amrsan runtime sanitizer (also AMRSAN=1); findings go to stderr and exit status 1")
		chaosOn     = flag.Bool("chaos", false, "inject a seeded fault schedule (drops, duplicates, latency spikes, partitions, stalls) and run the MPI layer's retransmit/ack path")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed of the fault schedule (with -chaos); the same seed reproduces the same injected-event log")
		ranksRemote = flag.Int("ranks-remote", 0, "split the world across this many OS processes connected by the TCP wire transport (0: one process; incompatible with -trace and -sanitize)")
	)
	flag.Parse()

	if err := run(runArgs{
		variant: *variant, nodes: *nodes, ranksPerNode: *ranksPerNode, coresPerRank: *coresPerRank,
		input: *input, np: [3]int{*npx, *npy, *npz}, blockCells: *blockCells, vars: *vars,
		commVars: *commVars, timesteps: *timesteps, stages: *stages, maxLevel: *maxLevel,
		sendFaces: *sendFaces, maxComm: *maxComm, sepBufs: *sepBufs, delayedCk: *delayedCk,
		seqRefine: *seqRefine, netModel: *netModel, tracePath: *tracePath, traceWidth: *traceWidth,
		stencil: *stencil, partitioner: *partition, noLB: *noLB, blockTampi: *blockTampi,
		uniformRefine: *uniformRef, showMesh: *showMesh,
		checkpoint: *checkpoint, restore: *restore, chromeOut: *chromeOut,
		fjSchedule: *fjSchedule, sanitize: *sanitizeOn,
		chaos: *chaosOn, chaosSeed: *chaosSeed, procs: *ranksRemote,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "miniamr:", err)
		os.Exit(1)
	}
}

type runArgs struct {
	variant                           string
	nodes, ranksPerNode, coresPerRank int
	input                             string
	np                                [3]int
	blockCells, vars, commVars        int
	timesteps, stages, maxLevel       int
	sendFaces                         bool
	maxComm                           int
	sepBufs, delayedCk, seqRefine     bool
	netModel                          string
	tracePath                         string
	traceWidth                        int
	stencil                           int
	partitioner                       string
	noLB, blockTampi                  bool
	uniformRefine, showMesh           bool
	checkpoint, restore               string
	chromeOut, fjSchedule             string
	sanitize                          bool
	chaos                             bool
	chaosSeed                         uint64
	procs                             int
}

func run(a runArgs) error {
	sc := harness.Scale{
		BlockCells: a.blockCells, Vars: a.vars,
		Timesteps: a.timesteps, StagesPerTimestep: a.stages, MaxLevel: a.maxLevel,
	}
	root := a.np
	if root[0] == 0 || root[1] == 0 || root[2] == 0 {
		// One root block per core by default, the paper's weak-scaling rule.
		var err error
		root, err = defaultRoot(a.nodes * a.ranksPerNode * a.coresPerRank)
		if err != nil {
			return err
		}
	}

	var cfg app.Config
	switch a.input {
	case "single-sphere":
		cfg = harness.SingleSphere(root, sc)
	case "four-spheres":
		cfg = harness.FourSpheres(root, sc)
	default:
		return fmt.Errorf("unknown input %q (want single-sphere or four-spheres)", a.input)
	}
	cfg.CommVars = a.commVars
	cfg.SendFaces = a.sendFaces
	cfg.MaxCommTasks = a.maxComm
	cfg.SeparateBuffers = a.sepBufs
	cfg.DelayedChecksum = a.delayedCk
	cfg.SequentialRefinement = a.seqRefine
	cfg.Stencil = a.stencil
	cfg.Partitioner = a.partitioner
	cfg.DisableLoadBalance = a.noLB
	cfg.BlockingTAMPI = a.blockTampi
	cfg.UniformRefine = a.uniformRefine
	cfg.RenderMesh = a.showMesh
	cfg.CheckpointFile = a.checkpoint
	cfg.RestoreFile = a.restore
	cfg.ForkJoinSchedule = a.fjSchedule

	var net simnet.Model
	switch a.netModel {
	case "none":
		net = simnet.None()
	case "default":
		net = simnet.Default()
	case "slow":
		net = simnet.Slow()
	default:
		return fmt.Errorf("unknown net model %q (want none or default)", a.netModel)
	}

	var rec *trace.Recorder
	if a.tracePath != "" || a.chromeOut != "" {
		rec = trace.NewRecorder()
	}

	spec := harness.RunSpec{
		Nodes: a.nodes, RanksPerNode: a.ranksPerNode, CoresPerRank: a.coresPerRank,
		Net: net, Cfg: cfg, Variant: harness.Variant(a.variant), Recorder: rec,
		Sanitize: a.sanitize, Procs: a.procs,
	}
	if a.chaos {
		faults := simnet.DefaultFaults(a.chaosSeed)
		spec.Chaos = &faults
	}
	m, err := harness.Run(spec)
	if err != nil {
		return err
	}

	fmt.Printf("variant:           %s\n", a.variant)
	fmt.Printf("cluster:           %d nodes x %d ranks x %d cores (%d ranks, %d cores)\n",
		a.nodes, a.ranksPerNode, a.coresPerRank, m.Ranks, m.Cores)
	if a.procs > 1 {
		fmt.Printf("processes:         %d (TCP wire transport)\n", a.procs)
	}
	fmt.Printf("mesh:              %dx%dx%d root blocks, %d^3 cells, %d vars, max level %d\n",
		root[0], root[1], root[2], a.blockCells, a.vars, a.maxLevel)
	fmt.Printf("total time:        %.3fs\n", m.Total.Seconds())
	fmt.Printf("refinement time:   %.3fs (%.1f%%)\n", m.Refine.Seconds(),
		100*m.Refine.Seconds()/m.Total.Seconds())
	fmt.Printf("non-refinement:    %.3fs\n", m.NoRefine.Seconds())
	fmt.Printf("stencil flops:     %d (%.3f GFLOPS)\n", m.Flops, m.GFLOPS)
	fmt.Printf("final blocks:      %d\n", m.FinalBlocks)
	if m.Tasks > 0 {
		fmt.Printf("tasks spawned:     %d\n", m.Tasks)
	}
	fmt.Printf("checksums passed:  %d\n", len(m.Checksums))
	fmt.Printf("messages sent:     %d (%.2f MB total)\n", m.Messages, float64(m.CommBytes)/1e6)
	fmt.Printf("buffer arena:      %d gets, %.1f%% hit rate, %d live, %d heap allocs\n",
		m.Arena.Gets, 100*m.Arena.HitRate(), m.Arena.Live, m.HeapAllocs)
	if a.chaos {
		fmt.Printf("faults injected:   %d (seed %d): %s\n", m.Faults.Total(), a.chaosSeed, m.Faults)
		fmt.Printf("fault recovery:    %d retransmits, %d drops recovered, %d duplicates discarded, %d reordered, %d abandoned\n",
			m.Chaos.Retransmits, m.Chaos.Recovered, m.Chaos.DupsDiscarded, m.Chaos.Reordered, m.Chaos.Abandoned)
	}
	if len(m.MeshHistory) > 0 {
		last := m.MeshHistory[len(m.MeshHistory)-1]
		fmt.Printf("mesh levels:       %v blocks per level\n", last.PerLevel)
	}
	if m.MeshView != "" {
		fmt.Print(m.MeshView)
	}

	if rec != nil && a.tracePath != "" {
		f, err := os.Create(a.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, rec.Events()); err != nil {
			return err
		}
		fmt.Printf("trace:             %d events -> %s\n", rec.Len(), a.tracePath)
		fmt.Print(trace.Render(rec.Events(), a.traceWidth))
	}
	if rec != nil && a.chromeOut != "" {
		f, err := os.Create(a.chromeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, rec.Events()); err != nil {
			return err
		}
		fmt.Printf("chrome trace:      %d events -> %s (open in chrome://tracing)\n", rec.Len(), a.chromeOut)
	}
	if a.checkpoint != "" {
		fmt.Printf("checkpoint:        %s (per rank)\n", a.checkpoint)
	}
	if m.Sanitizer != nil {
		if len(m.Sanitizer) == 0 {
			fmt.Printf("sanitizer:         clean (0 findings)\n")
		} else {
			for _, r := range m.Sanitizer {
				fmt.Fprintln(os.Stderr, r)
			}
			return fmt.Errorf("sanitizer reported %d finding(s)", len(m.Sanitizer))
		}
	}
	return nil
}

// defaultRoot arranges n root blocks as evenly as possible over three
// dimensions (one block per core by default).
func defaultRoot(n int) ([3]int, error) {
	if n <= 0 {
		return [3]int{}, fmt.Errorf("cluster must have at least one core")
	}
	return harness.Factor3(n), nil
}
