// Command amrgraph extracts the per-driver task DAGs and communication
// topologies declared by //amr:graph anchors (see internal/analysis) and
// emits them as text, DOT or JSON. It is the graph half of amrlint: the
// same extraction that powers the graphlint analyzer, exposed so the
// graphs can be rendered, diffed and committed as goldens.
//
// Modes:
//
//	amrgraph [packages]                  print graphs to stdout (-format)
//	amrgraph -o dir [packages]           write one file per driver to dir
//	amrgraph -update dir [packages]      refresh golden text graphs in dir
//	amrgraph -check dir [packages]       diff against goldens; exit 1 on drift
//
// Exit status: 0 clean, 1 golden mismatch or graph findings, 2 usage or
// load error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"miniamr/internal/analysis"
)

func main() {
	format := flag.String("format", "text", "output format: text, dot or json")
	outDir := flag.String("o", "", "write one file per driver into this directory")
	checkDir := flag.String("check", "", "compare text graphs against goldens in this directory")
	updateDir := flag.String("update", "", "write text graphs as goldens into this directory")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: amrgraph [-format text|dot|json] [-o dir | -check dir | -update dir] [packages]\n\npackages are directories or dir/... trees (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch *format {
	case "text", "dot", "json":
	default:
		fmt.Fprintf(os.Stderr, "amrgraph: unknown format %q\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	graphs, findings := analysis.ExtractGraphs(pkgs)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "amrgraph: no //amr:graph anchors found")
		os.Exit(2)
	}

	status := 0
	if len(findings) > 0 {
		status = 1
	}

	switch {
	case *checkDir != "":
		for _, g := range graphs {
			path := filepath.Join(*checkDir, g.Driver+".txt")
			want, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "amrgraph: missing golden for driver %s: %v\n", g.Driver, err)
				status = 1
				continue
			}
			if got := g.Text(); got != string(want) {
				fmt.Fprintf(os.Stderr, "amrgraph: driver %s diverges from golden %s (run amrgraph -update %s to refresh)\n",
					g.Driver, path, *checkDir)
				status = 1
			}
		}
	case *updateDir != "":
		if err := os.MkdirAll(*updateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "amrgraph:", err)
			os.Exit(2)
		}
		for _, g := range graphs {
			path := filepath.Join(*updateDir, g.Driver+".txt")
			if err := os.WriteFile(path, []byte(g.Text()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "amrgraph:", err)
				os.Exit(2)
			}
			fmt.Println("wrote", path)
		}
	case *outDir != "":
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "amrgraph:", err)
			os.Exit(2)
		}
		ext := map[string]string{"text": ".txt", "dot": ".dot", "json": ".json"}[*format]
		for _, g := range graphs {
			path := filepath.Join(*outDir, g.Driver+ext)
			if err := os.WriteFile(path, []byte(render(g, *format)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "amrgraph:", err)
				os.Exit(2)
			}
			fmt.Println("wrote", path)
		}
	default:
		for _, g := range graphs {
			fmt.Print(render(g, *format))
		}
	}
	os.Exit(status)
}

func render(g *analysis.Graph, format string) string {
	switch format {
	case "dot":
		return g.DOT()
	case "json":
		return g.JSON()
	default:
		return g.Text()
	}
}
