// Command amrperf evaluates the statically extracted driver graphs (see
// internal/analysis and cmd/amrgraph) under concrete instance counts
// into performance profiles: critical-path length and concurrency width
// in the work-span model, the resulting speedup bound, and the per-rank
// communication volume with surface-to-volume message scaling. It is the
// cost-model half of perflint, exposed so the profiles can be rendered,
// diffed and committed as goldens.
//
// Modes:
//
//	amrperf [packages]                 print profiles to stdout (-format)
//	amrperf -o dir [packages]          write one file per driver to dir
//	amrperf -update dir [packages]     refresh golden text profiles in dir
//	amrperf -check dir [packages]      diff against goldens; exit 1 on drift
//	amrperf -escape [packages]         also audit //amr:hot allocation pins
//	                                   (compiles the packages with -gcflags=-m)
//
// Each driver is evaluated at its committed default configuration (see
// analysis.DefaultCostConfig); -workers, -axes and -bytes override it:
//
//	amrperf -axes blocks=64,msgs=6 -workers 48 ./internal/amr/app
//
// Exit status: 0 clean, 1 golden mismatch or findings, 2 usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"miniamr/internal/analysis"
)

func main() {
	format := flag.String("format", "text", "output format: text or json")
	outDir := flag.String("o", "", "write one file per driver into this directory")
	checkDir := flag.String("check", "", "compare text profiles against goldens in this directory")
	updateDir := flag.String("update", "", "write text profiles as goldens into this directory")
	workers := flag.Int("workers", 0, "override the per-rank worker count for every driver")
	axesFlag := flag.String("axes", "", "comma-separated axis=count overrides (e.g. blocks=64,msgs=6)")
	bytesFlag := flag.String("bytes", "", "comma-separated axis=bytes message payload overrides")
	escape := flag.Bool("escape", false, "audit //amr:hot allocation budgets against the compiler's escape analysis")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: amrperf [-format text|json] [-workers n] [-axes a=n,...] [-bytes a=n,...] [-escape] [-o dir | -check dir | -update dir] [packages]\n\npackages are directories or dir/... trees (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch *format {
	case "text", "json":
	default:
		fmt.Fprintf(os.Stderr, "amrperf: unknown format %q\n", *format)
		os.Exit(2)
	}
	axes, err := parseCounts(*axesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrperf: -axes:", err)
		os.Exit(2)
	}
	bytesOv, err := parseCounts(*bytesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrperf: -bytes:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	graphs, findings := analysis.ExtractGraphs(pkgs)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "amrperf: no //amr:graph anchors found")
		os.Exit(2)
	}
	status := 0
	if len(findings) > 0 {
		status = 1
	}

	var profiles []*analysis.Profile
	for _, g := range graphs {
		cfg, _ := analysis.DefaultCostConfig(g.Driver)
		if *workers > 0 {
			cfg.Workers = *workers
		}
		cfg.Axes = overlay(cfg.Axes, axes)
		cfg.Bytes = overlay(cfg.Bytes, bytesOv)
		p := analysis.ProfileGraph(g, cfg)
		for _, w := range p.Warnings {
			fmt.Fprintf(os.Stderr, "amrperf: driver %s: %s\n", g.Driver, w)
		}
		profiles = append(profiles, p)
	}

	if *escape {
		if !runEscapeAudit(pkgs, patterns) {
			status = 1
		}
	}

	switch {
	case *checkDir != "":
		for _, p := range profiles {
			path := filepath.Join(*checkDir, p.Driver+".txt")
			want, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "amrperf: missing golden for driver %s: %v\n", p.Driver, err)
				status = 1
				continue
			}
			if got := p.Text(); got != string(want) {
				fmt.Fprintf(os.Stderr, "amrperf: driver %s diverges from golden %s (run amrperf -update %s to refresh)\n",
					p.Driver, path, *checkDir)
				status = 1
			}
		}
	case *updateDir != "":
		if err := os.MkdirAll(*updateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "amrperf:", err)
			os.Exit(2)
		}
		for _, p := range profiles {
			path := filepath.Join(*updateDir, p.Driver+".txt")
			if err := os.WriteFile(path, []byte(p.Text()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "amrperf:", err)
				os.Exit(2)
			}
			fmt.Println("wrote", path)
		}
	case *outDir != "":
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "amrperf:", err)
			os.Exit(2)
		}
		ext := map[string]string{"text": ".txt", "json": ".json"}[*format]
		for _, p := range profiles {
			path := filepath.Join(*outDir, p.Driver+ext)
			if err := os.WriteFile(path, []byte(render(p, *format)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "amrperf:", err)
				os.Exit(2)
			}
			fmt.Println("wrote", path)
		}
	default:
		if *format == "json" {
			fmt.Print(renderAll(profiles))
		} else {
			for i, p := range profiles {
				if i > 0 {
					fmt.Println()
				}
				fmt.Print(p.Text())
			}
		}
	}
	os.Exit(status)
}

// runEscapeAudit checks every //amr:hot budget in the loaded packages
// against the compiler's proved escape sites. It reports true when all
// pins hold.
func runEscapeAudit(pkgs []*analysis.Package, patterns []string) bool {
	hots, malformed := analysis.CollectHotFuncs(pkgs)
	for _, f := range malformed {
		fmt.Fprintln(os.Stderr, f)
	}
	ok := len(malformed) == 0
	if len(hots) == 0 {
		return ok
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrperf: go build -gcflags=-m: %v\n%s", err, out)
		return false
	}
	for _, f := range analysis.CheckEscapes(hots, analysis.ParseEscapes(string(out))) {
		fmt.Fprintln(os.Stderr, f)
		if f.Severity == "error" {
			ok = false
		}
	}
	return ok
}

// parseCounts parses "a=1,b=2" override lists.
func parseCounts(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]int)
	for _, kv := range strings.Split(s, ",") {
		name, val, found := strings.Cut(kv, "=")
		if !found || name == "" {
			return nil, fmt.Errorf("malformed entry %q (want axis=count)", kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("malformed count in %q", kv)
		}
		m[name] = n
	}
	return m, nil
}

// overlay applies overrides on top of a preset without mutating it.
func overlay(base, over map[string]int) map[string]int {
	if len(over) == 0 {
		return base
	}
	out := make(map[string]int, len(base)+len(over))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

func render(p *analysis.Profile, format string) string {
	if format == "json" {
		return p.JSON()
	}
	return p.Text()
}

// renderAll emits the combined machine-readable report: one JSON array
// of profiles, the artifact CI archives.
func renderAll(profiles []*analysis.Profile) string {
	var b strings.Builder
	b.WriteString("[")
	for i, p := range profiles {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		b.WriteString(strings.TrimRight(p.JSON(), "\n"))
	}
	b.WriteString("\n]\n")
	return b.String()
}
