// Command benchjson records the repo's performance trajectory as one
// machine-readable JSON document (BENCH_<n>.json in the repo root, one
// per PR). It combines two layers:
//
//   - the allocation micro-benchmarks of the pooled message path
//     (BenchmarkPingPong, BenchmarkGhostExchange), run via `go test
//     -bench -benchmem` and parsed from the standard output format; and
//   - end-to-end driver runs of both applications (miniAMR and HYDRO) in
//     all three variants on a small virtual cluster, reporting wall
//     time, stencil/sweep work and the buffer arena's hit rate.
//
// Wall-clock numbers vary across hosts; the allocation counts and arena
// hit rates are the stable regression surface (see the alloc-guard
// tests), and the driver times give the relative variant picture.
//
// Usage:
//
//	go run ./cmd/benchjson -o BENCH_7.json
//	go run ./cmd/benchjson -compare BENCH_6.json BENCH_7.json
//
// -compare diffs two committed reports and fails (exit 1) on a
// micro-benchmark regression: any increase in allocs/op — the pooled
// message path pins exact counts — or more than 10% in ns/op. Driver
// wall times are printed for context but never gate, as they vary
// across hosts.
//
// The micro-benchmarks are scheduler-handoff-bound (a ping-pong is two
// goroutine wakeups), so a single ns/op sample carries enough noise to
// produce both fluke regressions and fluke baselines. Each benchmark is
// therefore run -count times (default 5) and the report records the
// median ns/op plus the raw samples. The ns/op gate only applies when
// the baseline also carries samples; against a legacy single-sample
// baseline the ns/op delta is printed as informational and only the
// deterministic allocs/op gate holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"miniamr/internal/amr/app"
	"miniamr/internal/driver"
	"miniamr/internal/harness"
	"miniamr/internal/hydro"
	"miniamr/internal/simnet"
)

// Micro is one micro-benchmark: the median over -count runs, with the
// raw ns/op samples kept so future comparisons can see the spread. A
// legacy report (recorded before multi-sampling) has no Samples.
type Micro struct {
	Name        string    `json:"name"`
	Package     string    `json:"package"`
	Iterations  int64     `json:"iterations"`
	NsPerOp     float64   `json:"ns_per_op"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	Samples     []float64 `json:"ns_per_op_samples,omitempty"`
}

// Driver is one end-to-end application run.
type Driver struct {
	App          string  `json:"app"`
	Variant      string  `json:"variant"`
	Ranks        int     `json:"ranks"`
	Cores        int     `json:"cores"`
	TotalSeconds float64 `json:"total_seconds"`
	Flops        int64   `json:"flops"`
	GFLOPS       float64 `json:"gflops"`
	Tasks        int     `json:"tasks,omitempty"`
	Messages     int64   `json:"messages"`
	CommBytes    int64   `json:"comm_bytes"`
	ArenaGets    int64   `json:"arena_gets"`
	ArenaHitRate float64 `json:"arena_hit_rate"`
	HeapAllocs   uint64  `json:"heap_allocs"`
}

// Report is the whole document.
type Report struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Date      string   `json:"date"`
	BenchTime string   `json:"benchtime"`
	Micro     []Micro  `json:"microbenchmarks"`
	Drivers   []Driver `json:"drivers"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output path of the JSON report")
	benchtime := flag.String("benchtime", "2000x", "benchtime of the micro-benchmarks")
	count := flag.Int("count", 5, "samples per micro-benchmark (the median ns/op is recorded)")
	compare := flag.Bool("compare", false, "compare two reports (benchjson -compare old.json new.json) and exit 1 on regression")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1)))
	}

	rep := Report{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Date:      time.Now().UTC().Format(time.RFC3339),
		BenchTime: *benchtime,
	}

	micro, err := runMicro(*benchtime, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Micro = micro

	drivers, err := runDrivers()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Drivers = drivers

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d micro-benchmarks, %d driver runs -> %s\n",
		len(rep.Micro), len(rep.Drivers), *out)
}

// compareReports diffs two committed reports micro-benchmark by
// micro-benchmark. Allocation counts are deterministic, so any allocs/op
// increase fails; ns/op carries host noise, so only a >10% slowdown
// fails. Returns the process exit status.
func compareReports(oldPath, newPath string) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	key := func(m Micro) string { return m.Package + " " + m.Name }
	olds := make(map[string]Micro, len(oldRep.Micro))
	for _, m := range oldRep.Micro {
		olds[key(m)] = m
	}

	status := 0
	fail := func(format string, args ...any) {
		fmt.Printf("REGRESSION "+format+"\n", args...)
		status = 1
	}
	seen := 0
	for _, m := range newRep.Micro {
		o, ok := olds[key(m)]
		if !ok {
			fmt.Printf("new        %s: ns/op=%.1f allocs/op=%d (no baseline)\n", key(m), m.NsPerOp, m.AllocsPerOp)
			continue
		}
		seen++
		regressed := false
		if m.AllocsPerOp > o.AllocsPerOp {
			fail("%s: allocs/op %d -> %d", key(m), o.AllocsPerOp, m.AllocsPerOp)
			regressed = true
		}
		// The ns/op gate needs a median on both sides: one sample of a
		// goroutine-handoff-bound benchmark can sit well off the true
		// cost in either direction, so against a legacy single-sample
		// baseline the wall-clock delta is informational only.
		noisy := false
		if len(o.Samples) == 0 && o.NsPerOp > 0 && m.NsPerOp > o.NsPerOp*1.10 {
			fmt.Printf("noisy      %s: ns/op %.1f -> %.1f (+%.1f%%; single-sample baseline, not gated)\n",
				key(m), o.NsPerOp, m.NsPerOp, 100*(m.NsPerOp-o.NsPerOp)/o.NsPerOp)
			noisy = true
		} else if len(o.Samples) > 0 && o.NsPerOp > 0 && m.NsPerOp > o.NsPerOp*1.10 {
			fail("%s: ns/op %.1f -> %.1f (+%.1f%%, medians of %d and %d samples)",
				key(m), o.NsPerOp, m.NsPerOp, 100*(m.NsPerOp-o.NsPerOp)/o.NsPerOp,
				len(o.Samples), max(len(m.Samples), 1))
			regressed = true
		}
		if !regressed && !noisy {
			fmt.Printf("ok         %s: ns/op %.1f -> %.1f, allocs/op %d -> %d\n",
				key(m), o.NsPerOp, m.NsPerOp, o.AllocsPerOp, m.AllocsPerOp)
		}
	}
	for k := range olds {
		found := false
		for _, m := range newRep.Micro {
			if key(m) == k {
				found = true
				break
			}
		}
		if !found {
			fail("%s: benchmark disappeared from the new report", k)
		}
	}
	if seen == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no comparable micro-benchmarks between the reports")
		return 2
	}

	// Driver wall times, informational only.
	oldDrv := make(map[string]Driver, len(oldRep.Drivers))
	for _, d := range oldRep.Drivers {
		oldDrv[d.App+"/"+d.Variant] = d
	}
	for _, d := range newRep.Drivers {
		if o, ok := oldDrv[d.App+"/"+d.Variant]; ok {
			fmt.Printf("driver     %s/%s: %.3fs -> %.3fs (not gated)\n",
				d.App, d.Variant, o.TotalSeconds, d.TotalSeconds)
		}
	}
	if status == 0 {
		fmt.Printf("benchjson: no regressions (%d benchmarks compared against %s)\n", seen, oldPath)
	}
	return status
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != 1 {
		return rep, fmt.Errorf("%s: unsupported schema %d", path, rep.Schema)
	}
	return rep, nil
}

// runMicro executes the allocation benchmarks through the go tool and
// parses the standard -benchmem output lines. Each benchmark runs count
// times; the recorded ns/op is the median sample (allocation counts are
// deterministic, so the last sample stands for them all).
func runMicro(benchtime string, count int) ([]Micro, error) {
	if count < 1 {
		count = 1
	}
	pkgs := []string{"./internal/mpi", "./internal/amr/app"}
	args := append([]string{
		"test", "-run", "xxx",
		"-bench", "BenchmarkPingPong|BenchmarkGhostExchange",
		"-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count),
	}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}

	var micro []Micro
	index := make(map[string]int) // package+name -> position in micro
	pkg := ""
	for _, line := range strings.Split(string(outBytes), "\n") {
		fields := strings.Fields(line)
		// Package trailer lines ("ok   miniamr/internal/mpi  1.2s") bind
		// the preceding benchmark lines to their package.
		if len(fields) >= 2 && fields[0] == "pkg:" {
			pkg = fields[1]
			continue
		}
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := Micro{Package: pkg}
		m.Name = strings.SplitN(fields[0], "-", 2)[0]
		m.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				m.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				m.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		// -count repeats each benchmark; fold repeats into one entry.
		if at, ok := index[m.Package+" "+m.Name]; ok {
			micro[at].Samples = append(micro[at].Samples, m.NsPerOp)
			micro[at].AllocsPerOp = m.AllocsPerOp
			micro[at].BytesPerOp = m.BytesPerOp
		} else {
			m.Samples = []float64{m.NsPerOp}
			index[m.Package+" "+m.Name] = len(micro)
			micro = append(micro, m)
		}
	}
	if len(micro) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from go test output")
	}
	for i := range micro {
		micro[i].NsPerOp = median(micro[i].Samples)
	}
	return micro, nil
}

// median of a non-empty sample set (the mean of the middle two when the
// count is even).
func median(s []float64) float64 {
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// runDrivers runs both applications in every variant on the same small
// virtual cluster and snapshots the harness metrics.
func runDrivers() ([]Driver, error) {
	variants := []harness.Variant{driver.MPIOnly, driver.ForkJoin, driver.DataFlow}

	miniSpec := func(v harness.Variant) harness.RunSpec {
		cfg := harness.SingleSphere([3]int{2, 2, 1}, harness.Scale{
			BlockCells: 8, Vars: 4,
			Timesteps: 4, StagesPerTimestep: 4, MaxLevel: 1,
		})
		return harness.RunSpec{
			Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
			Net: simnet.None(), Job: app.Job(cfg), Variant: v,
		}
	}
	hydroSpec := func(v harness.Variant) harness.RunSpec {
		cfg := hydro.Config{
			NX: 64, NY: 64, TilesX: 4, TilesY: 4,
			Timesteps: 8, ChecksumEvery: 4,
		}
		return harness.RunSpec{
			Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
			Net: simnet.None(), Job: hydro.Job(cfg), Variant: v,
		}
	}
	var out []Driver
	for _, spec := range []struct {
		app string
		mk  func(harness.Variant) harness.RunSpec
	}{
		{"miniamr", miniSpec},
		{"hydro", hydroSpec},
	} {
		for _, v := range variants {
			m, err := harness.Run(spec.mk(v))
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", spec.app, v, err)
			}
			out = append(out, Driver{
				App: spec.app, Variant: string(v),
				Ranks: m.Ranks, Cores: m.Cores,
				TotalSeconds: m.Total.Seconds(),
				Flops:        m.Flops,
				GFLOPS:       m.GFLOPS,
				Tasks:        m.Tasks,
				Messages:     m.Messages,
				CommBytes:    m.CommBytes,
				ArenaGets:    m.Arena.Gets,
				ArenaHitRate: m.Arena.HitRate(),
				HeapAllocs:   m.HeapAllocs,
			})
		}
	}
	return out, nil
}
