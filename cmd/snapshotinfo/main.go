// Command snapshotinfo inspects a checkpoint file written by the miniamr
// tool's -checkpoint flag: loop counters, objects, mesh shape, and the
// rank's block inventory.
//
//	miniamr -variant dataflow -checkpoint "ck-%d.bin" ...
//	snapshotinfo ck-0.bin
package main

import (
	"fmt"
	"os"

	"miniamr/internal/amr/snapshot"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: snapshotinfo <checkpoint-file>")
		os.Exit(2)
	}
	if err := info(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "snapshotinfo:", err)
		os.Exit(1)
	}
}

func info(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := snapshot.Read(f)
	if err != nil {
		return err
	}

	fmt.Printf("rank:              %d\n", st.Rank)
	fmt.Printf("completed:         timestep %d, stage %d\n", st.Step, st.Stage)

	fmt.Printf("objects:           %d\n", len(st.Objects))
	for i, o := range st.Objects {
		fmt.Printf("  [%d] %-20s center=(%.3f,%.3f,%.3f) size=(%.3f,%.3f,%.3f) move=(%+.3f,%+.3f,%+.3f)\n",
			i, o.Type, o.Center[0], o.Center[1], o.Center[2],
			o.Size[0], o.Size[1], o.Size[2], o.Move[0], o.Move[1], o.Move[2])
	}

	perLevel := map[int]int{}
	perRank := map[int]int{}
	maxLevel := 0
	for _, l := range st.Leaves {
		perLevel[l.Coord.Level]++
		perRank[l.Owner]++
		if l.Coord.Level > maxLevel {
			maxLevel = l.Coord.Level
		}
	}
	fmt.Printf("mesh leaves:       %d total\n", len(st.Leaves))
	for lvl := 0; lvl <= maxLevel; lvl++ {
		if perLevel[lvl] > 0 {
			fmt.Printf("  level %d:         %d blocks\n", lvl, perLevel[lvl])
		}
	}
	ranks := 0
	for r := range perRank {
		if r+1 > ranks {
			ranks = r + 1
		}
	}
	//amr:nolint det-map-order -- ranks is a max fold over the rank map's keys; max is order-insensitive
	fmt.Printf("ownership:         %d ranks", ranks)
	mn, mx := -1, 0
	for r := 0; r < ranks; r++ {
		n := perRank[r]
		if mn < 0 || n < mn {
			mn = n
		}
		if n > mx {
			mx = n
		}
	}
	fmt.Printf(" (min %d / max %d blocks per rank)\n", mn, mx)

	var cells int64
	for _, blk := range st.Blocks {
		cells += int64(blk.Size().Cells())
	}
	fmt.Printf("local blocks:      %d (%d interior cells", len(st.Blocks), cells)
	for _, blk := range st.Blocks {
		fmt.Printf(", %dx%dx%d cells x %d vars each",
			blk.Size().X, blk.Size().Y, blk.Size().Z, blk.Vars())
		break
	}
	fmt.Println(")")
	return nil
}
