// Command amrrun is the mpirun-style launcher of the reproduction: it
// runs either bundled application (miniAMR or HYDRO) split across N OS
// processes connected by the TCP wire transport, each process owning a
// contiguous block of ranks. The launcher process is the harness parent;
// the children are re-executions of this same binary (the harness plants
// the job spec in their environment), so there is nothing to deploy
// beyond this one executable.
//
// Examples:
//
//	amrrun -np 2 -variant dataflow -nodes 2 -ranks-per-node 2
//	amrrun -np 4 -app hydro -variant mpionly -nodes 2 -ranks-per-node 2 -timesteps 8
//	amrrun -np 2 -chaos -chaos-seed 7 -variant forkjoin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"miniamr/internal/harness"
	"miniamr/internal/hydro"
	"miniamr/internal/simnet"
)

func main() {
	// Children of this launcher are re-executions of this binary.
	harness.MaybeRunWireChild()
	var (
		np           = flag.Int("np", 2, "number of OS processes to split the ranks across")
		appName      = flag.String("app", "miniamr", "application: miniamr or hydro")
		variant      = flag.String("variant", "dataflow", "parallelisation variant: mpionly, forkjoin or dataflow")
		nodes        = flag.Int("nodes", 2, "virtual node count")
		ranksPerNode = flag.Int("ranks-per-node", 2, "MPI ranks per node")
		coresPerRank = flag.Int("cores-per-rank", 2, "cores per rank (workers of hybrid variants)")
		netModel     = flag.String("net", "default", "interconnect model: none, default or slow")
		timeout      = flag.Duration("timeout", 0, "hard deadline for the whole run (0: harness default)")

		// miniAMR problem shape (ignored with -app hydro).
		input      = flag.String("input", "four-spheres", "miniAMR problem preset: single-sphere or four-spheres")
		blockCells = flag.Int("block-size", 8, "miniAMR cells per block edge (even)")
		vars       = flag.Int("vars", 8, "miniAMR variables per cell")
		timesteps  = flag.Int("timesteps", 6, "timesteps (both applications)")
		stages     = flag.Int("stages", 6, "miniAMR stages per timestep")
		maxLevel   = flag.Int("max-level", 2, "miniAMR maximum refinement level")

		// HYDRO problem shape (ignored with -app miniamr).
		nx     = flag.Int("nx", 96, "HYDRO global interior cells in x")
		ny     = flag.Int("ny", 96, "HYDRO global interior cells in y")
		tilesX = flag.Int("tiles-x", 8, "HYDRO tiles in x")
		tilesY = flag.Int("tiles-y", 8, "HYDRO tiles in y")

		chaosOn   = flag.Bool("chaos", false, "inject a seeded fault schedule and run the MPI layer's retransmit/ack path")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed of the fault schedule (with -chaos)")
	)
	flag.Parse()

	if err := run(runArgs{
		np: *np, app: *appName, variant: *variant,
		nodes: *nodes, ranksPerNode: *ranksPerNode, coresPerRank: *coresPerRank,
		netModel: *netModel, timeout: *timeout,
		input: *input, blockCells: *blockCells, vars: *vars,
		timesteps: *timesteps, stages: *stages, maxLevel: *maxLevel,
		nx: *nx, ny: *ny, tilesX: *tilesX, tilesY: *tilesY,
		chaos: *chaosOn, chaosSeed: *chaosSeed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "amrrun:", err)
		os.Exit(1)
	}
}

type runArgs struct {
	np                                int
	app, variant                      string
	nodes, ranksPerNode, coresPerRank int
	netModel                          string
	timeout                           time.Duration
	input                             string
	blockCells, vars                  int
	timesteps, stages, maxLevel       int
	nx, ny, tilesX, tilesY            int
	chaos                             bool
	chaosSeed                         uint64
}

func run(a runArgs) error {
	if a.np < 1 {
		return fmt.Errorf("-np %d must be at least 1", a.np)
	}
	var net simnet.Model
	switch a.netModel {
	case "none":
		net = simnet.None()
	case "default":
		net = simnet.Default()
	case "slow":
		net = simnet.Slow()
	default:
		return fmt.Errorf("unknown net model %q (want none, default or slow)", a.netModel)
	}
	spec := harness.RunSpec{
		Nodes: a.nodes, RanksPerNode: a.ranksPerNode, CoresPerRank: a.coresPerRank,
		Net: net, Variant: harness.Variant(a.variant),
		Procs: a.np, ProcTimeout: a.timeout,
	}
	switch a.app {
	case "miniamr":
		sc := harness.Scale{
			BlockCells: a.blockCells, Vars: a.vars,
			Timesteps: a.timesteps, StagesPerTimestep: a.stages, MaxLevel: a.maxLevel,
		}
		root, err := defaultRoot(a.nodes * a.ranksPerNode * a.coresPerRank)
		if err != nil {
			return err
		}
		var cfg = harness.FourSpheres(root, sc)
		if a.input == "single-sphere" {
			cfg = harness.SingleSphere(root, sc)
		} else if a.input != "four-spheres" {
			return fmt.Errorf("unknown input %q (want single-sphere or four-spheres)", a.input)
		}
		spec.Cfg = cfg
	case "hydro":
		spec.Job = hydro.Job(hydro.Config{
			NX: a.nx, NY: a.ny, TilesX: a.tilesX, TilesY: a.tilesY,
			Timesteps: a.timesteps,
		})
	default:
		return fmt.Errorf("unknown application %q (want miniamr or hydro)", a.app)
	}
	if a.chaos {
		faults := simnet.DefaultFaults(a.chaosSeed)
		spec.Chaos = &faults
	}

	m, err := harness.Run(spec)
	if err != nil {
		return err
	}
	fmt.Printf("app:               %s (%s)\n", a.app, a.variant)
	fmt.Printf("processes:         %d (TCP wire transport)\n", a.np)
	fmt.Printf("cluster:           %d nodes x %d ranks x %d cores (%d ranks, %d cores)\n",
		a.nodes, a.ranksPerNode, a.coresPerRank, m.Ranks, m.Cores)
	fmt.Printf("total time:        %.3fs\n", m.Total.Seconds())
	fmt.Printf("flops:             %d (%.3f GFLOPS)\n", m.Flops, m.GFLOPS)
	if m.Tasks > 0 {
		fmt.Printf("tasks spawned:     %d\n", m.Tasks)
	}
	fmt.Printf("checksums passed:  %d\n", len(m.Checksums))
	fmt.Printf("messages sent:     %d (%.2f MB total)\n", m.Messages, float64(m.CommBytes)/1e6)
	fmt.Printf("buffer arenas:     %d gets, %.1f%% hit rate (summed over processes)\n",
		m.Arena.Gets, 100*m.Arena.HitRate())
	if a.chaos {
		fmt.Printf("faults injected:   %d (seed %d): %s\n", m.Faults.Total(), a.chaosSeed, m.Faults)
		fmt.Printf("fault recovery:    %d retransmits, %d drops recovered, %d duplicates discarded, %d reordered, %d abandoned\n",
			m.Chaos.Retransmits, m.Chaos.Recovered, m.Chaos.DupsDiscarded, m.Chaos.Reordered, m.Chaos.Abandoned)
	}
	return nil
}

// defaultRoot mirrors cmd/miniamr's weak-scaling rule: one root block
// per core, factored into a near-cubic mesh.
func defaultRoot(cores int) ([3]int, error) {
	if cores < 1 {
		return [3]int{}, fmt.Errorf("cluster has no cores")
	}
	return harness.Factor3(cores), nil
}
