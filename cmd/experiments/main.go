// Command experiments regenerates the tables and figures of the paper's
// evaluation section on a virtual cluster.
//
// Subcommands (one per experiment; "all" runs everything):
//
//	table1           Table I   — time vs ranks per node (hybrid variants)
//	table2           Table II  — non-refinement time vs --max_comm_tasks
//	trace            Figures 1-3 — execution timelines and overlap stats
//	weak             Figure 4  — weak scaling throughput and efficiency
//	strong           Figure 5  — strong scaling speedup and efficiency
//	refine-ablation  Section IV-B — taskified vs sequential refinement
//	sched-ablation   Section V-B — immediate-successor policy on/off
//	all              every experiment in paper order
//
// Scale flags apply to every subcommand; the defaults finish in minutes on
// a laptop. Absolute numbers are not comparable to the paper's testbed —
// the *shapes* (which variant wins, how efficiency decays) are the
// reproduction target; see EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"miniamr/internal/harness"
	"miniamr/internal/simnet"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	var (
		nodes     = fs.Int("nodes", 4, "node count (maximum for scaling sweeps; power of two)")
		cores     = fs.Int("cores-per-node", 4, "cores per virtual node (paper: 48)")
		hybridRPN = fs.Int("hybrid-rpn", 0, "ranks per node for hybrid variants (0: cores/4, at least 1)")
		repeats   = fs.Int("repeats", 1, "repetitions per measured point; the fastest is kept")
		blockSize = fs.Int("block-size", 8, "cells per block edge")
		vars      = fs.Int("vars", 8, "variables per cell")
		timesteps = fs.Int("timesteps", 6, "timesteps")
		stages    = fs.Int("stages", 6, "stages per timestep")
		maxLevel  = fs.Int("max-level", 2, "maximum refinement level")
		netName   = fs.String("net", "default", "interconnect model: none, default or slow")
		width     = fs.Int("trace-width", 100, "timeline width for the trace experiment")
		jsonOut   = fs.String("json", "", "also write the experiment's raw results as JSON to this file")
	)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	var net simnet.Model
	switch *netName {
	case "none":
		net = simnet.None()
	case "default":
		net = simnet.Default()
	case "slow":
		net = simnet.Slow()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown net model %q\n", *netName)
		os.Exit(2)
	}
	opt := harness.Options{
		Nodes:              *nodes,
		CoresPerNode:       *cores,
		HybridRanksPerNode: *hybridRPN,
		Repeats:            *repeats,
		Net:                &net,
		Scale: harness.Scale{
			BlockCells: *blockSize, Vars: *vars,
			Timesteps: *timesteps, StagesPerTimestep: *stages, MaxLevel: *maxLevel,
		},
	}

	var results = map[string]any{}
	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "table1":
			rows, err := harness.Table1(opt)
			if err != nil {
				return err
			}
			harness.PrintTable1(os.Stdout, rows)
			results[name] = rows
		case "table2":
			rows, err := harness.Table2(opt)
			if err != nil {
				return err
			}
			harness.PrintTable2(os.Stdout, rows)
			results[name] = rows
		case "trace":
			res, err := harness.Traces(opt)
			if err != nil {
				return err
			}
			harness.PrintTraces(os.Stdout, res, *width)
			results[name] = map[string]any{"mpionly": res.MPIOnly, "dataflow": res.DataFlow}
		case "weak":
			series, err := harness.WeakScaling(opt)
			if err != nil {
				return err
			}
			harness.PrintScaling(os.Stdout, "Figure 4: weak scaling throughput and efficiency", series)
			results[name] = series
		case "strong":
			series, err := harness.StrongScaling(opt)
			if err != nil {
				return err
			}
			harness.PrintStrong(os.Stdout, series)
			results[name] = series
		case "refine-ablation":
			res, err := harness.RefineAblation(opt)
			if err != nil {
				return err
			}
			harness.PrintRefineAblation(os.Stdout, res)
			results[name] = res
		case "sched-ablation":
			res, err := harness.SchedulerAblation(opt)
			if err != nil {
				return err
			}
			harness.PrintSchedulerAblation(os.Stdout, res)
			results[name] = res
		case "all":
			for _, sub := range []string{"table1", "table2", "trace", "weak", "strong", "refine-ablation", "sched-ablation"} {
				fmt.Printf("==> %s\n", sub)
				if err := run(sub); err != nil {
					return fmt.Errorf("%s: %w", sub, err)
				}
				fmt.Println()
			}
		default:
			usage()
			return fmt.Errorf("unknown subcommand %q", name)
		}
		return nil
	}
	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: encoding json:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <table1|table2|trace|weak|strong|refine-ablation|sched-ablation|all> [flags]
run "experiments all -nodes 4 -cores-per-node 4" to regenerate everything at laptop scale`)
}
