// Command amrlint runs the repo-specific static-analysis suite: leaselint,
// reqlint, deplint, collectivelint, graphlint, perflint, conclint and
// determlint (see internal/analysis). Patterns are directories or dir/...
// trees; the default ./... covers the module.
//
// -json switches the findings to one JSON record per line (file, line,
// id, analyzer, severity, message); the id is the stable analyzer/rule
// slug shared with perflint, so suppressions and dashboards survive
// message rewording. -graph emits the extracted driver graphs instead of
// findings, as DOT by default or as JSON objects with -json.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"

	"miniamr/internal/analysis"
)

// jsonFinding is the stable machine-readable record shape.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON records, one per line")
	graph := flag.Bool("graph", false, "emit the extracted driver graphs (DOT, or JSON with -json)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: amrlint [-tests] [-json] [-graph] [packages]\n\npackages are directories or dir/... trees (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *graph {
		graphs, findings := analysis.ExtractGraphs(pkgs)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		for _, g := range graphs {
			if *jsonOut {
				fmt.Print(g.JSON())
			} else {
				fmt.Print(g.DOT())
			}
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	findings := analysis.Run(pkgs, analysis.All())
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			sev := f.Severity
			if sev == "" {
				sev = "error"
			}
			enc.Encode(jsonFinding{ //nolint:errcheck // stdout encode of plain strings
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				ID:       f.ID(),
				Analyzer: f.Analyzer,
				Severity: sev,
				Message:  f.Message,
			})
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "amrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
