// Command amrlint runs the repo-specific static-analysis suite: leaselint,
// reqlint, deplint and collectivelint (see internal/analysis). Patterns are
// directories or dir/... trees; the default ./... covers the module.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"miniamr/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: amrlint [-tests] [packages]\n\npackages are directories or dir/... trees (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analysis.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "amrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
